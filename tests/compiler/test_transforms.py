"""Unit tests for loop unrolling and instruction scheduling."""

import pytest

from repro.compiler import (
    ScheduleStrategy,
    UnrollError,
    schedule_kernel,
    unroll_loop,
)
from repro.compiler.unroll import unroll_loop_fused
from repro.ir import Opcode, parse_kernel
from repro.ir.registers import gpr
from repro.sim import WarpInput, run_warp
from repro.sim.memory import Memory

REDUCTION = """
.kernel red
.livein R0 R1 R2 R3
entry:
    mov R5, 0
loop:
    ldg R6, [R0]
    ffma R5, R6, R3, R5
    iadd R0, R0, 4
    iadd R2, R2, -1
    setp P0, 0, R2
    @P0 bra loop
done:
    stg [R1], R5
    exit
"""


def _acc_after(kernel, trip, seed=11):
    memory = Memory(seed=seed)
    run_warp(
        kernel,
        WarpInput(
            {gpr(0): 0, gpr(1): 512, gpr(2): trip, gpr(3): 3},
            memory=memory,
        ),
    )
    return memory.global_mem[512]


class TestUnroll:
    def test_unrolled_semantics_any_trip(self):
        kernel = parse_kernel(REDUCTION)
        unrolled = unroll_loop(kernel, "loop", 4)
        for trip in (1, 2, 3, 4, 5, 7, 8, 13):
            assert _acc_after(kernel, trip) == _acc_after(unrolled, trip)

    def test_unrolled_block_count(self):
        kernel = parse_kernel(REDUCTION)
        unrolled = unroll_loop(kernel, "loop", 3)
        labels = [block.label for block in unrolled.blocks]
        assert labels == [
            "entry", "loop", "loop__u1", "loop__u2", "done",
        ]

    def test_temporaries_renamed_per_copy(self):
        kernel = parse_kernel(REDUCTION)
        unrolled = unroll_loop(kernel, "loop", 2)
        load_dsts = {
            inst.dst
            for _, inst in unrolled.instructions()
            if inst.opcode is Opcode.LDG
        }
        assert len(load_dsts) == 2

    def test_factor_validation(self):
        kernel = parse_kernel(REDUCTION)
        with pytest.raises(UnrollError):
            unroll_loop(kernel, "loop", 1)

    def test_non_loop_rejected(self):
        kernel = parse_kernel(REDUCTION)
        with pytest.raises(UnrollError):
            unroll_loop(kernel, "entry", 2)

    def test_fused_semantics_divisible_trips(self):
        kernel = parse_kernel(REDUCTION)
        fused = unroll_loop_fused(kernel, "loop", 4)
        for trip in (4, 8, 16):
            assert _acc_after(kernel, trip) == _acc_after(fused, trip)

    def test_fused_single_body_block(self):
        kernel = parse_kernel(REDUCTION)
        fused = unroll_loop_fused(kernel, "loop", 4)
        labels = [block.label for block in fused.blocks]
        assert labels == ["entry", "loop", "done"]
        loads = sum(
            1
            for inst in fused.block("loop").instructions
            if inst.opcode is Opcode.LDG
        )
        assert loads == 4

    def test_fused_combines_induction_updates(self):
        kernel = parse_kernel(REDUCTION)
        fused = unroll_loop_fused(kernel, "loop", 4)
        pointer_updates = [
            inst
            for inst in fused.block("loop").instructions
            if inst.opcode is Opcode.IADD and inst.dst == gpr(0)
            and inst.srcs[0] == gpr(0)
        ]
        assert len(pointer_updates) == 1
        assert pointer_updates[0].srcs[1].value == 16


class TestScheduling:
    def test_hoist_moves_loads_first(self):
        kernel = parse_kernel(REDUCTION)
        fused = unroll_loop_fused(kernel, "loop", 4)
        hoisted = schedule_kernel(
            fused, ScheduleStrategy.HOIST_LONG_LATENCY
        )
        body = hoisted.block("loop").instructions
        load_positions = [
            i for i, inst in enumerate(body)
            if inst.opcode is Opcode.LDG
        ]
        ffma_positions = [
            i for i, inst in enumerate(body)
            if inst.opcode is Opcode.FFMA
        ]
        assert max(load_positions) < min(ffma_positions)

    def test_hoist_preserves_semantics(self):
        kernel = parse_kernel(REDUCTION)
        fused = unroll_loop_fused(kernel, "loop", 4)
        hoisted = schedule_kernel(
            fused, ScheduleStrategy.HOIST_LONG_LATENCY
        )
        assert _acc_after(fused, 8) == _acc_after(hoisted, 8)

    def test_shorten_lifetimes_preserves_semantics(self, loop_kernel):
        rescheduled = schedule_kernel(
            loop_kernel, ScheduleStrategy.SHORTEN_LIFETIMES
        )

        def result(kernel):
            memory = Memory(seed=2)
            run_warp(
                kernel,
                WarpInput(
                    {gpr(0): 0, gpr(1): 700, gpr(2): 5}, memory=memory
                ),
            )
            return sorted(memory.global_mem.items())

        assert result(loop_kernel) == result(rescheduled)

    def test_memory_order_preserved(self):
        kernel = parse_kernel(
            """
            .kernel mem
            .livein R0 R1
            entry:
                stg [R0], R1
                ldg R2, [R0]
                stg [R1], R2
                exit
            """
        )
        for strategy in ScheduleStrategy:
            scheduled = schedule_kernel(kernel, strategy)
            opcodes = [
                inst.opcode
                for inst in scheduled.blocks[0].instructions
                if inst.opcode in (Opcode.STG, Opcode.LDG)
            ]
            assert opcodes == [Opcode.STG, Opcode.LDG, Opcode.STG]

    def test_control_flow_stays_last(self, loop_kernel):
        for strategy in ScheduleStrategy:
            scheduled = schedule_kernel(loop_kernel, strategy)
            for block in scheduled.blocks:
                for inst in block.instructions[:-1]:
                    assert not inst.opcode.is_branch
                    assert not inst.opcode.is_exit

    def test_predicate_dependences_respected(self):
        kernel = parse_kernel(
            """
            .kernel p
            .livein R0 R1
            entry:
                setp P0, R0, 5
                selp R2, R0, R1, P0
                stg [R1], R2
                exit
            """
        )
        scheduled = schedule_kernel(
            kernel, ScheduleStrategy.SHORTEN_LIFETIMES
        )
        ops = [i.opcode for i in scheduled.blocks[0].instructions]
        assert ops.index(Opcode.SETP) < ops.index(Opcode.SELP)


class TestPipeline:
    def test_compile_kernel_end_to_end(self):
        from repro.compiler import compile_kernel

        kernel = parse_kernel(
            """
            .kernel virt
            .livein R0 R1
            entry:
                iadd R50, R0, 1
                imul R60, R50, R50
                iadd R70, R60, R50
                stg [R1], R70
                exit
            """
        )
        result = compile_kernel(kernel)
        assert result.kernel.num_architectural_registers <= 32
        assert result.allocation.num_webs > 0

    def test_compile_verifies_dynamically(self):
        from repro.compiler import compile_kernel
        from repro.sim import build_traces
        from repro.sim.verify import verify_trace

        kernel = parse_kernel(REDUCTION)
        result = compile_kernel(
            kernel, strategy=ScheduleStrategy.SHORTEN_LIFETIMES
        )
        traces = build_traces(
            result.kernel,
            [WarpInput({gpr(0): 0, gpr(1): 512, gpr(2): 6, gpr(3): 3})],
        )
        for trace in traces.warp_traces:
            verify_trace(
                result.kernel, result.allocation.partition, trace
            )


class TestFusedUnrollEdgeCases:
    def test_use_after_update_gets_next_offset(self):
        """A read of the induction variable placed *after* its update
        in the body must see (i+1)*step in copy i."""
        kernel = parse_kernel(
            """
            .kernel ua
            .livein R0 R1 R2
            entry:
                mov R5, 0
            loop:
                ldg R6, [R0]
                iadd R0, R0, 4
                iadd R7, R0, 0
                iadd R5, R5, R7
                iadd R5, R5, R6
                iadd R2, R2, -1
                setp P0, 0, R2
                @P0 bra loop
            done:
                stg [R1], R5
                exit
            """
        )
        fused = unroll_loop_fused(kernel, "loop", 2)

        def result(k, trip):
            memory = Memory(seed=3)
            run_warp(
                k,
                WarpInput(
                    {gpr(0): 0, gpr(1): 640, gpr(2): trip},
                    memory=memory,
                ),
            )
            return memory.global_mem[640]

        for trip in (2, 4, 6):
            assert result(kernel, trip) == result(fused, trip)

    def test_multiple_induction_variables(self):
        kernel = parse_kernel(
            """
            .kernel multi
            .livein R0 R1 R2
            entry:
                mov R5, 0
            loop:
                ldg R6, [R0]
                ldg R7, [R1]
                iadd R8, R6, R7
                iadd R5, R5, R8
                iadd R0, R0, 4
                iadd R1, R1, 8
                iadd R2, R2, -1
                setp P0, 0, R2
                @P0 bra loop
            done:
                stg [R0], R5
                exit
            """
        )
        fused = unroll_loop_fused(kernel, "loop", 3)

        def acc(k, trip):
            from repro.sim import WarpExecutor

            executor = WarpExecutor(
                k,
                WarpInput(
                    {gpr(0): 0, gpr(1): 4096, gpr(2): trip},
                    memory=Memory(seed=8),
                ),
            )
            list(executor.run())
            return executor.registers[gpr(5)]

        for trip in (3, 6):
            assert acc(kernel, trip) == acc(fused, trip)
        # Each pointer's update is combined into one stride.
        pointer_updates = [
            inst
            for inst in fused.block("loop").instructions
            if inst.opcode is Opcode.IADD
            and inst.dst in (gpr(0), gpr(1))
            and inst.srcs[0] == inst.dst
        ]
        strides = sorted(int(i.srcs[1].value) for i in pointer_updates)
        assert strides == [12, 24]

    def test_multi_block_loop_rejected(self):
        from repro.workloads import get_workload

        spec = get_workload("mergesort")  # hammock inside the loop
        with pytest.raises(UnrollError):
            unroll_loop_fused(spec.kernel, "loop", 2)

    def test_unguarded_backward_branch_rejected(self):
        kernel = parse_kernel(
            """
            .kernel f
            .livein R0
            entry:
                iadd R1, R0, 1
                iadd R2, R1, 1
                iadd R3, R2, 1
                bra entry
            """
        )
        with pytest.raises(UnrollError):
            unroll_loop_fused(kernel, "entry", 2)

"""Unit tests for live intervals and linear-scan register lowering."""

import pytest

from repro.compiler import (
    MRF_WORDS_PER_THREAD,
    RegisterPressureError,
    compute_live_intervals,
    register_pressure,
    run_linear_scan,
)
from repro.ir import parse_kernel
from repro.ir.registers import gpr
from repro.sim import WarpInput, run_warp
from repro.sim.memory import Memory


class TestLiveIntervals:
    def test_straight_line_intervals(self, straight_kernel):
        intervals = {
            iv.reg: iv for iv in compute_live_intervals(straight_kernel)
        }
        # R4 defined at 1, last used at 2.
        assert intervals[gpr(4)].start == 1
        assert intervals[gpr(4)].end == 2
        # R3 (ldg result) defined at 0, last used at 5.
        assert intervals[gpr(3)].start == 0
        assert intervals[gpr(3)].end == 5

    def test_live_in_starts_at_zero(self, straight_kernel):
        intervals = {
            iv.reg: iv for iv in compute_live_intervals(straight_kernel)
        }
        assert intervals[gpr(0)].start == 0

    def test_loop_extends_carried_intervals(self, loop_kernel):
        intervals = {
            iv.reg: iv for iv in compute_live_intervals(loop_kernel)
        }
        loop_block = loop_kernel.block_index("loop")
        loop_end = sum(
            len(loop_kernel.blocks[i].instructions)
            for i in range(loop_block + 1)
        ) - 1
        # The accumulator R5 is loop-carried: interval spans the loop.
        assert intervals[gpr(5)].end >= loop_end

    def test_sorted_by_start(self, loop_kernel):
        intervals = compute_live_intervals(loop_kernel)
        starts = [iv.start for iv in intervals]
        assert starts == sorted(starts)

    def test_overlap_predicate(self):
        from repro.compiler import LiveInterval

        a = LiveInterval(gpr(0), 0, 5)
        b = LiveInterval(gpr(1), 5, 9)
        c = LiveInterval(gpr(2), 6, 9)
        assert a.overlaps(b)
        assert not a.overlaps(c)


class TestLinearScan:
    VIRTUAL = """
    .kernel virt
    .livein R0 R1
    entry:
        iadd R100, R0, 1
        imul R200, R100, R100
        iadd R300, R200, R0
        stg [R1], R300
        exit
    """

    def test_lowers_to_compact_names(self):
        kernel = parse_kernel(self.VIRTUAL)
        result = run_linear_scan(kernel)
        assert result.words_used <= 4
        assert (
            result.kernel.num_architectural_registers
            <= MRF_WORDS_PER_THREAD
        )

    def test_live_ins_pinned(self):
        kernel = parse_kernel(self.VIRTUAL)
        result = run_linear_scan(kernel)
        assert result.mapping[gpr(0)] == gpr(0)
        assert result.mapping[gpr(1)] == gpr(1)
        assert result.kernel.live_in == (gpr(0), gpr(1))

    def test_registers_reused_after_death(self):
        kernel = parse_kernel(self.VIRTUAL)
        result = run_linear_scan(kernel)
        # R100 dies at the imul; R300 can reuse its word.
        assert result.mapping[gpr(300)] == result.mapping[gpr(100)]

    def test_semantics_preserved(self):
        kernel = parse_kernel(self.VIRTUAL)
        lowered = run_linear_scan(kernel).kernel

        def final_store(k):
            memory = Memory(seed=4)
            run_warp(
                k,
                WarpInput({gpr(0): 7, gpr(1): 100}, memory=memory),
            )
            return memory.global_mem[100]

        assert final_store(kernel) == final_store(lowered)

    def test_pressure_error(self):
        lines = [".kernel hot", ".livein R0", "entry:"]
        # 40 simultaneously live values in a 32-word file.
        for index in range(40):
            lines.append(f"    iadd R{100 + index}, R0, {index}")
        for index in range(40):
            lines.append(f"    stg [R0], R{100 + index}")
        lines.append("    exit")
        kernel = parse_kernel("\n".join(lines))
        with pytest.raises(RegisterPressureError):
            run_linear_scan(kernel)

    def test_wide_values_get_consecutive_words(self):
        kernel = parse_kernel(
            """
            .kernel wide
            .livein R0
            entry:
                mov RD100, R0
                iadd R101, R0, 1
                stg [R0], R101
                stg [R0], RD100
                exit
            """
        )
        result = run_linear_scan(kernel)
        wide = result.mapping[gpr(100, 64)]
        assert wide.num_words == 2

    def test_loop_kernel_round_trips(self, loop_kernel):
        result = run_linear_scan(loop_kernel)
        assert result.words_used <= 8
        result.kernel.validate()

    def test_register_pressure_metric(self, straight_kernel):
        pressure = register_pressure(straight_kernel)
        assert 3 <= pressure <= 8

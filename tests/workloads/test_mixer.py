"""Unit tests for the arithmetic mixer underlying all kernel shapes."""

import pytest

from repro.ir.builder import KernelBuilder
from repro.ir.instructions import Opcode
from repro.ir.registers import gpr
from repro.sim import WarpInput, run_warp
from repro.workloads.mixer import ArithMixer

LIVE_INS = (gpr(0), gpr(1), gpr(2))


def _emit(seed, num_ops, inputs_count=2, **mixer_kwargs):
    builder = KernelBuilder("mix", live_in=LIVE_INS)
    builder.block("entry")
    inputs = list(LIVE_INS[:inputs_count])
    mixer = ArithMixer(builder, seed, **mixer_kwargs)
    result = mixer.emit(inputs, num_ops, coefficients=(gpr(2),))
    builder.op(Opcode.STG, None, gpr(0), result)
    builder.exit()
    return builder.build(), result


class TestStructure:
    def test_emits_roughly_requested_ops(self):
        kernel, _ = _emit(seed=1, num_ops=20)
        # num_ops arithmetic plus stash drains and head merges.
        assert 18 <= kernel.num_instructions <= 32

    def test_deterministic(self):
        from repro.ir import format_kernel

        a, _ = _emit(seed=7, num_ops=15)
        b, _ = _emit(seed=7, num_ops=15)
        assert format_kernel(a) == format_kernel(b)

    def test_different_seeds_differ(self):
        from repro.ir import format_kernel

        a, _ = _emit(seed=1, num_ops=15)
        b, _ = _emit(seed=2, num_ops=15)
        assert format_kernel(a) != format_kernel(b)

    def test_result_register_in_temp_range(self):
        _, result = _emit(seed=3, num_ops=10)
        assert 8 <= result.index < 22

    def test_executes_without_uninitialised_reads(self):
        kernel, _ = _emit(seed=5, num_ops=25)
        run_warp(
            kernel, WarpInput({gpr(0): 3, gpr(1): 9, gpr(2): 4})
        )

    def test_minimum_ops(self):
        kernel, _ = _emit(seed=4, num_ops=1)
        kernel.validate()

    def test_requires_inputs(self):
        builder = KernelBuilder("m", live_in=LIVE_INS)
        builder.block("entry")
        mixer = ArithMixer(builder, 0)
        with pytest.raises(ValueError):
            mixer.emit([], 5)


class TestPatternMix:
    def _opcode_counts(self, seed=9, num_ops=60):
        kernel, _ = _emit(
            seed=seed, num_ops=num_ops,
            butterfly_prob=0.3, stash_prob=0.15, dead_prob=0.08,
        )
        counts = {}
        for _, inst in kernel.instructions():
            counts[inst.opcode] = counts.get(inst.opcode, 0) + 1
        return counts

    def test_butterflies_present(self):
        counts = self._opcode_counts()
        pair_ops = sum(
            counts.get(op, 0)
            for op in (Opcode.ISUB, Opcode.FMUL, Opcode.IMIN, Opcode.IMAX)
        )
        assert pair_ops > 0

    def test_dead_writes_present(self):
        counts = self._opcode_counts()
        assert counts.get(Opcode.XOR, 0) > 0

    def test_pool_balanced_across_multiple_emits(self):
        builder = KernelBuilder("multi", live_in=LIVE_INS)
        builder.block("entry")
        mixer = ArithMixer(builder, 13)
        for _ in range(6):
            result = mixer.emit(
                [gpr(0), gpr(1)], 12, coefficients=(gpr(2),)
            )
            mixer.release_result(result)
        builder.exit()
        kernel = builder.build()
        run_warp(
            kernel, WarpInput({gpr(0): 1, gpr(1): 2, gpr(2): 3})
        )

"""Structural tests for each kernel shape (what makes it that shape)."""

import pytest

from repro.ir.instructions import FunctionalUnit, Opcode
from repro.sim import build_traces
from repro.strands import partition_strands
from repro.workloads import shapes as shapes_module
from repro.workloads.shapes import (
    branchy_hammock,
    fma_chain,
    histogram_scatter,
    nested_loop,
    reduction_tight,
    stencil_shared,
    streaming_map,
    texture_sampler,
    transcendental,
)


def _opcode_count(kernel, opcode):
    return sum(
        1 for _, inst in kernel.instructions() if inst.opcode is opcode
    )


class TestStreamingMap:
    def test_unroll_controls_loads(self):
        for unroll in (1, 2, 4):
            spec = streaming_map("s", "t", unroll=unroll)
            assert _opcode_count(spec.kernel, Opcode.LDG) == unroll

    def test_one_store_per_element(self):
        spec = streaming_map("s", "t", unroll=3)
        assert _opcode_count(spec.kernel, Opcode.STG) == 3


class TestReductionTight:
    def test_minimal_loop_body(self):
        spec = reduction_tight("r", "t")
        loop = spec.kernel.block("loop")
        # The paper's worst case is a *tight* loop.
        assert len(loop.instructions) <= 8

    def test_scalarprod_variant_has_two_loads(self):
        spec = reduction_tight("sp", "t", loads=2)
        assert _opcode_count(spec.kernel, Opcode.LDG) == 2

    def test_descheduled_every_iteration(self):
        """The load's consumer is in the same iteration: the strand
        partition cuts inside the loop body."""
        spec = reduction_tight("r", "t")
        partition = partition_strands(spec.kernel)
        loop_index = spec.kernel.block_index("loop")
        loop_positions = {
            ref.position
            for ref, _ in spec.kernel.instructions()
            if ref.block_index == loop_index
        }
        assert any(p in partition.cut_before for p in loop_positions)


class TestFmaChain:
    def test_accumulators_are_loop_carried(self):
        spec = fma_chain("f", "t", accumulators=3)
        from repro.analysis.cfg import ControlFlowGraph
        from repro.analysis.liveness import LivenessAnalysis

        kernel = spec.kernel
        liveness = LivenessAnalysis(kernel, ControlFlowGraph(kernel))
        loop = kernel.block_index("loop")
        from repro.ir.registers import gpr

        for index in range(3):
            assert gpr(30 + index) in liveness.live_in[loop]


class TestStencilShared:
    def test_uses_shared_memory_not_global(self):
        spec = stencil_shared("st", "t", taps=5)
        assert _opcode_count(spec.kernel, Opcode.LDS) == 5
        assert _opcode_count(spec.kernel, Opcode.LDG) == 0

    def test_single_strand_loop_body(self):
        """LDS is short-latency: the whole body is one strand."""
        spec = stencil_shared("st", "t", taps=3)
        partition = partition_strands(spec.kernel)
        loop_index = spec.kernel.block_index("loop")
        strands = {
            partition.strand_of_position[ref.position]
            for ref, _ in spec.kernel.instructions()
            if ref.block_index == loop_index
        }
        assert len(strands) == 1


class TestTranscendental:
    def test_sfu_ops_present(self):
        spec = transcendental(
            "tr", "t", sfu_ops=(Opcode.SIN, Opcode.COS)
        )
        assert _opcode_count(spec.kernel, Opcode.SIN) == 1
        assert _opcode_count(spec.kernel, Opcode.COS) == 1

    def test_sfu_results_consumed_by_private(self):
        spec = transcendental("tr", "t", sfu_ops=(Opcode.RSQRT,))
        units = {
            inst.unit
            for _, inst in spec.kernel.instructions()
        }
        assert FunctionalUnit.SFU in units


class TestTextureSampler:
    def test_fetches_long_latency(self):
        spec = texture_sampler("tx", "t", fetches=3)
        assert _opcode_count(spec.kernel, Opcode.TEX) == 3


class TestHistogramScatter:
    def test_shared_scatter_pattern(self):
        spec = histogram_scatter("h", "t")
        assert _opcode_count(spec.kernel, Opcode.LDS) == 1
        assert _opcode_count(spec.kernel, Opcode.STS) == 1


class TestBranchyHammock:
    def test_both_arms_write_same_register(self):
        spec = branchy_hammock("b", "t")
        kernel = spec.kernel
        big_writes = {
            inst.dst
            for inst in kernel.block("big").instructions
            if inst.gpr_write() is not None
        }
        small_writes = {
            inst.dst
            for inst in kernel.block("small").instructions
            if inst.gpr_write() is not None
        }
        assert big_writes & small_writes

    def test_both_paths_execute_across_warps(self):
        spec = branchy_hammock("b", "t")
        traces = build_traces(spec.kernel, spec.warp_inputs)
        visited = set()
        for trace in traces.warp_traces:
            for event in trace:
                visited.add(
                    spec.kernel.blocks[event.ref.block_index].label
                )
        assert {"big", "small"} <= visited


class TestNestedLoop:
    def test_two_backward_targets(self):
        spec = nested_loop("n", "t")
        targets = spec.kernel.backward_branch_targets()
        assert len(targets) == 2

    def test_inner_trip_respected(self):
        spec = nested_loop("n", "t", inner_trip=3, trips=(2,),
                           num_warps=1)
        traces = build_traces(spec.kernel, spec.warp_inputs)
        inner = spec.kernel.block_index("inner")
        inner_entries = sum(
            1
            for event in traces.warp_traces[0]
            if event.ref.block_index == inner
            and event.ref.instr_index == 0
        )
        assert inner_entries == 3 * 2  # inner_trip x outer trips

"""Tests for the synthetic benchmark suites and shapes."""

import pytest

from repro.sim import build_traces, usage_histogram
from repro.workloads import (
    BENCHMARK_NAMES,
    SUITE_NAMES,
    all_workloads,
    build_suite,
    get_workload,
    suite_of,
)


class TestRegistry:
    def test_table1_coverage(self):
        """Every Table 1 benchmark of the paper is synthesised."""
        expected = {
            # CUDA SDK 3.2
            "bicubictexture", "binomialoptions", "boxfilter",
            "convolutionseparable", "convolutiontexture", "dct8x8",
            "dwthaar1d", "dxtc", "eigenvalues", "fastwalshtransform",
            "histogram", "imagedenoising", "mandelbrot", "matrixmul",
            "mergesort", "montecarlo", "nbody", "recursivegaussian",
            "reduction", "scalarprod", "sobelfilter", "sobolqrng",
            "sortingnetworks", "vectoradd", "volumerender",
            # Parboil
            "cp", "mri-fhd", "mri-q", "rpes", "sad",
            # Rodinia
            "backprop", "hotspot", "hwt", "lu", "needle", "srad",
        }
        assert set(BENCHMARK_NAMES) == expected

    def test_suite_partition(self):
        total = sum(len(build_suite(s)) for s in SUITE_NAMES)
        assert total == len(BENCHMARK_NAMES)

    def test_suite_sizes_match_table1(self):
        assert len(build_suite("cuda_sdk")) == 25
        assert len(build_suite("parboil")) == 5
        assert len(build_suite("rodinia")) == 6

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(KeyError):
            get_workload("nosuchthing")
        with pytest.raises(KeyError):
            build_suite("nosuchsuite")

    def test_suite_of(self):
        assert suite_of("matrixmul") == "cuda_sdk"
        assert suite_of("cp") == "parboil"
        assert suite_of("hotspot") == "rodinia"


class TestWorkloadValidity:
    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_builds_and_executes(self, name):
        spec = get_workload(name)
        spec.kernel.validate()
        traces = build_traces(spec.kernel, spec.warp_inputs[:1])
        assert traces.dynamic_instructions > 10

    def test_deterministic_construction(self):
        a = get_workload("matrixmul")
        b = get_workload("matrixmul")
        from repro.ir import format_kernel

        assert format_kernel(a.kernel) == format_kernel(b.kernel)

    def test_scale_lengthens_traces(self):
        small = get_workload("vectoradd", scale=1.0)
        large = get_workload("vectoradd", scale=3.0)
        t_small = build_traces(small.kernel, small.warp_inputs[:1])
        t_large = build_traces(large.kernel, large.warp_inputs[:1])
        assert (
            t_large.dynamic_instructions
            > 2 * t_small.dynamic_instructions
        )

    def test_warps_have_distinct_inputs(self):
        spec = get_workload("hotspot")
        bases = {
            tuple(sorted((str(k), v) for k, v in w.live_in_values.items()))
            for w in spec.warp_inputs
        }
        assert len(bases) == len(spec.warp_inputs)


class TestUsageCalibration:
    """The synthetic suites must reproduce Figure 2's statistics."""

    @pytest.fixture(scope="class")
    def overall(self):
        from repro.analysis.usage import UsageHistogram

        histogram = UsageHistogram()
        for spec in all_workloads():
            traces = build_traces(spec.kernel, spec.warp_inputs)
            histogram.merge(usage_histogram(traces))
        return histogram

    def test_read_at_most_once_near_70_percent(self, overall):
        assert 0.55 <= overall.fraction_read_at_most_once() <= 0.80

    def test_read_once_within_three_near_50_percent(self, overall):
        assert 0.40 <= overall.fraction_read_once_within(3) <= 0.65

    def test_most_read_once_values_short_lived(self, overall):
        fractions = overall.lifetime_fractions()
        assert fractions["1"] > 0.4
        assert fractions["1"] + fractions["2"] + fractions["3"] > 0.7

    def test_some_dead_values_exist(self, overall):
        assert overall.read_counts["0"] > 0

    def test_multi_read_tail_exists(self, overall):
        assert overall.read_counts[">2"] > 0


class TestGenerators:
    def test_deterministic(self):
        from repro.ir import format_kernel
        from repro.workloads import generate_kernel

        assert format_kernel(generate_kernel(7)) == format_kernel(
            generate_kernel(7)
        )

    def test_distinct_seeds_distinct_kernels(self):
        from repro.ir import format_kernel
        from repro.workloads import generate_kernel

        assert format_kernel(generate_kernel(1)) != format_kernel(
            generate_kernel(2)
        )

    @pytest.mark.parametrize("seed", range(8))
    def test_generated_kernels_execute(self, seed):
        from repro.workloads import generate_workload

        spec = generate_workload(seed)
        spec.kernel.validate()
        traces = build_traces(spec.kernel, spec.warp_inputs)
        assert traces.dynamic_instructions > 0

"""Golden regression values for the calibrated reproduction.

Workloads, allocation, and accounting are fully deterministic, so the
normalized energies of a fixed workload subset are exact regression
anchors.  Bands of ±0.02 absolute allow small intentional re-tunings
(update the GOLDEN table when recalibrating); anything larger means a
behavioural change in the allocator, the hardware models, or the
workload generators and deserves scrutiny against EXPERIMENTS.md.
"""

import pytest

from repro.experiments import SuiteData
from repro.sim import Scheme, SchemeKind
from repro.workloads import get_workload

_NAMES = [
    "matrixmul", "reduction", "scalarprod", "hotspot", "montecarlo",
    "mergesort", "histogram", "vectoradd", "nbody",
    "convolutionseparable", "lu", "sad",
]

#: scheme label -> (Scheme, golden normalized energy).
GOLDEN = {
    "hw_rfc_3": (Scheme(SchemeKind.HW_TWO_LEVEL, 3), 0.6364),
    "hw_lrf_6": (Scheme(SchemeKind.HW_THREE_LEVEL, 6), 0.5779),
    "sw_orf_3": (Scheme(SchemeKind.SW_TWO_LEVEL, 3), 0.5528),
    "sw_split_3": (
        Scheme(SchemeKind.SW_THREE_LEVEL, 3, split_lrf=True),
        0.4710,
    ),
    "sw_unified_3": (Scheme(SchemeKind.SW_THREE_LEVEL, 3), 0.4902),
}

_TOLERANCE = 0.02


@pytest.fixture(scope="module")
def data():
    return SuiteData.build([get_workload(name) for name in _NAMES])


@pytest.mark.parametrize("label", sorted(GOLDEN))
def test_golden_energy(data, label):
    scheme, expected = GOLDEN[label]
    measured = data.normalized_energy(scheme)
    assert measured == pytest.approx(expected, abs=_TOLERANCE), (
        f"{label}: measured {measured:.4f}, golden {expected:.4f} "
        f"(±{_TOLERANCE}) — recalibrate GOLDEN only if the change is "
        "intentional"
    )


def test_golden_ordering(data):
    """The paper's scheme ordering is a hard invariant regardless of
    calibration drift."""
    energies = {
        label: data.normalized_energy(scheme)
        for label, (scheme, _) in GOLDEN.items()
    }
    assert (
        energies["sw_split_3"]
        < energies["sw_unified_3"]
        < energies["sw_orf_3"]
        < energies["hw_rfc_3"]
    )
    assert energies["hw_lrf_6"] < energies["hw_rfc_3"]

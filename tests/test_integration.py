"""End-to-end integration tests: the paper's headline claims hold on
representative workloads, and the CLI works."""

import pytest

from repro.cli import main
from repro.energy import normalized_energy
from repro.experiments import SuiteData
from repro.hierarchy.counters import AccessCounters
from repro.sim import (
    BEST_HW_THREE_LEVEL,
    BEST_HW_TWO_LEVEL,
    BEST_SCHEME,
    BEST_SW_TWO_LEVEL,
    Scheme,
    SchemeKind,
    evaluate_traces,
)
from repro.workloads import get_workload

_NAMES = [
    "matrixmul", "hotspot", "reduction", "montecarlo",
    "mergesort", "histogram", "nbody", "sad",
]


@pytest.fixture(scope="module")
def data():
    return SuiteData.build([get_workload(name) for name in _NAMES])


class TestHeadlineClaims:
    def test_scheme_ordering(self, data):
        """Paper Section 6.4: HW (34%) < HW LRF (41%) < SW (45%) <
        SW LRF split (54%) — the ordering must reproduce."""
        energies = {
            "hw": data.normalized_energy(BEST_HW_TWO_LEVEL),
            "hw_lrf": data.normalized_energy(BEST_HW_THREE_LEVEL),
            "sw": data.normalized_energy(BEST_SW_TWO_LEVEL),
            "sw_lrf": data.normalized_energy(BEST_SCHEME),
        }
        assert energies["sw_lrf"] < energies["sw"] < energies["hw"]
        assert energies["hw_lrf"] < energies["hw"]
        assert energies["sw_lrf"] < energies["hw_lrf"]

    def test_best_scheme_saves_roughly_half(self, data):
        energy = data.normalized_energy(BEST_SCHEME)
        assert 0.35 <= energy <= 0.60  # paper: 0.46

    def test_sw_cuts_mrf_reads_vs_hw(self, data):
        """Paper Section 1: compiler allocation reduces MRF reads by
        ~25% compared to the RFC."""
        from repro.levels import Level

        hw, _ = data.aggregate(BEST_HW_TWO_LEVEL)
        sw, _ = data.aggregate(BEST_SW_TWO_LEVEL)
        assert sw.reads(Level.MRF) < 0.95 * hw.reads(Level.MRF)

    def test_reduction_is_worst_case(self, data):
        per_bench = data.per_benchmark_energy(BEST_SCHEME)
        assert per_bench["reduction"] == max(per_bench.values())

    def test_three_entry_orf_is_best_for_sw(self, data):
        """Paper: the SW schemes are most efficient at 3 entries."""
        curve = {
            entries: data.normalized_energy(
                BEST_SCHEME.with_entries(entries)
            )
            for entries in (1, 2, 3, 4, 5, 8)
        }
        best = min(curve, key=curve.get)
        # The optimum is a shallow bowl in the middle of the sweep (the
        # full suite lands on 3); on this subset allow 2-5 but require
        # 3 entries to be within 2% of the optimum and the extremes to
        # lose clearly.
        assert best in (2, 3, 4, 5)
        assert curve[3] <= curve[best] * 1.03
        assert curve[1] > curve[3]
        assert curve[8] > curve[3]


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "matrixmul" in out and "cuda_sdk" in out

    def test_show(self, capsys):
        assert main(["show", "vectoradd"]) == 0
        out = capsys.readouterr().out
        assert ".kernel vectoradd" in out
        assert "strands" in out

    def test_scheduler_command(self, capsys):
        assert main(
            ["scheduler", "--benchmarks", "vectoradd", "--warps", "8"]
        ) == 0
        out = capsys.readouterr().out
        assert "IPC" in out

    def test_bad_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            main(["show", "nosuchbench"])

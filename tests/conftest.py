"""Shared fixtures: small hand-written kernels used across test modules."""

from __future__ import annotations

import pytest

from repro.ir import parse_kernel
from repro.ir.registers import gpr
from repro.sim.executor import WarpInput

#: A straight-line kernel: no control flow, one long-latency load.
STRAIGHT_LINE_ASM = """
.kernel straight
.livein R0 R1 R2
entry:
    ldg R3, [R0]
    iadd R4, R0, 4
    iadd R5, R4, R2
    imul R6, R5, R5
    stg [R1], R6
    iadd R7, R6, R3
    stg [R1], R7
    exit
"""

#: A counted loop with a long-latency load at the top (strand per
#: iteration, deschedule on the first use of the load).
LOOP_ASM = """
.kernel loop_kernel
.livein R0 R1 R2
entry:
    mov R5, 0
loop:
    ldg R3, [R0]
    ffma R5, R3, R2, R5
    imul R6, R3, R3
    iadd R7, R6, 1
    stg [R1], R7
    iadd R0, R0, 4
    iadd R1, R1, 4
    iadd R2, R2, -1
    setp P0, 0, R2
    @P0 bra loop
done:
    stg [R1], R5
    exit
"""

#: A hammock writing R6 on both sides, consumed at the merge point
#: (Figure 10c of the paper).
HAMMOCK_ASM = """
.kernel hammock
.livein R0 R1
entry:
    ldg R3, [R0]
    setp P0, R3, 100
    @P0 bra small
big:
    imul R6, R3, 3
    bra merge
small:
    iadd R6, R3, 5
merge:
    iadd R7, R6, 1
    stg [R1], R7
    exit
"""

#: Figure 5(b): a long-latency load on only one side of a hammock; the
#: merge block needs an uncertainty endpoint.
UNCERTAIN_ASM = """
.kernel uncertain
.livein R0 R1 R2
entry:
    setp P0, R2, 50
    @P0 bra skip
taken:
    ldg R3, [R0]
    iadd R9, R2, 1
    bra merge
skip:
    iadd R3, R2, 7
    iadd R9, R2, 2
merge:
    iadd R4, R3, R9
    stg [R1], R4
    exit
"""


@pytest.fixture
def straight_kernel():
    return parse_kernel(STRAIGHT_LINE_ASM)


@pytest.fixture
def loop_kernel():
    return parse_kernel(LOOP_ASM)


@pytest.fixture
def hammock_kernel():
    return parse_kernel(HAMMOCK_ASM)


@pytest.fixture
def uncertain_kernel():
    return parse_kernel(UNCERTAIN_ASM)


@pytest.fixture
def loop_inputs():
    return [WarpInput({gpr(0): 0, gpr(1): 1000, gpr(2): 5})]


@pytest.fixture
def straight_inputs():
    return [WarpInput({gpr(0): 0, gpr(1): 1000, gpr(2): 3})]

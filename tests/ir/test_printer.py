"""Focused tests for the annotated disassembly printer."""

from repro.alloc import AllocationConfig, allocate_kernel
from repro.ir import (
    format_allocated_kernel,
    format_kernel,
    parse_kernel,
)
from repro.ir.instructions import (
    DestAnnotation,
    Instruction,
    Opcode,
    SourceAnnotation,
)
from repro.ir.registers import gpr
from repro.levels import Level


class TestPlainFormatting:
    def test_livein_line(self, straight_kernel):
        text = format_kernel(straight_kernel)
        assert ".livein R0 R1 R2" in text

    def test_block_labels_present(self, loop_kernel):
        text = format_kernel(loop_kernel)
        for label in ("entry:", "loop:", "done:"):
            assert label in text

    def test_no_annotations_in_plain_output(self, loop_kernel):
        allocate_kernel(loop_kernel, AllocationConfig.best_paper_config())
        text = format_kernel(loop_kernel)
        assert "ORF[" not in text
        assert ";" not in text


class TestAnnotatedFormatting:
    def _kernel(self):
        kernel = parse_kernel(
            ".kernel k\n.livein R0 R1\nentry:\n"
            " iadd R2, R0, 1\n iadd R3, R2, R0\n stg [R1], R3\n exit\n"
        )
        return kernel

    def test_dual_write_rendering(self):
        kernel = self._kernel()
        inst = kernel.blocks[0].instructions[0]
        inst.ensure_default_annotations()
        inst.dst_ann = DestAnnotation(
            levels=(Level.ORF, Level.MRF), orf_entry=2
        )
        text = format_allocated_kernel(kernel)
        assert "R2->ORF[2]+MRF" in text

    def test_lrf_bank_rendering(self):
        kernel = self._kernel()
        inst = kernel.blocks[0].instructions[0]
        inst.ensure_default_annotations()
        inst.dst_ann = DestAnnotation(levels=(Level.LRF,), lrf_bank=1)
        text = format_allocated_kernel(kernel)
        assert "R2->LRF[1]" in text

    def test_read_operand_fill_rendering(self):
        kernel = self._kernel()
        inst = kernel.blocks[0].instructions[1]
        inst.ensure_default_annotations()
        anns = list(inst.src_anns)
        anns[1] = SourceAnnotation(level=Level.MRF, orf_write_entry=0)
        inst.src_anns = tuple(anns)
        text = format_allocated_kernel(kernel)
        assert "R0<-MRF(+ORF[0])" in text

    def test_end_strand_marker(self):
        kernel = self._kernel()
        kernel.blocks[0].instructions[2].ends_strand = True
        text = format_allocated_kernel(kernel)
        assert "end-strand" in text

    def test_alignment_column(self):
        kernel = self._kernel()
        allocate_kernel(kernel, AllocationConfig(orf_entries=3))
        for line in format_allocated_kernel(kernel).splitlines():
            if ";" in line:
                assert line.index(";") >= 30  # annotations aligned

"""Unit tests for the assembly parser and pretty printer."""

import pytest

from repro.ir import (
    AsmSyntaxError,
    Immediate,
    Opcode,
    format_kernel,
    parse_kernel,
    parse_kernels,
)
from repro.ir.registers import gpr, pred


class TestParsing:
    def test_basic_kernel(self, straight_kernel):
        assert straight_kernel.name == "straight"
        assert straight_kernel.live_in == (gpr(0), gpr(1), gpr(2))
        assert straight_kernel.num_instructions == 8

    def test_guard_parsing(self):
        kernel = parse_kernel(
            """
            .kernel g
            entry:
                setp P1, R0, 4
                @!P1 bra entry
            done:
                exit
            """
        )
        bra = kernel.blocks[0].instructions[1]
        assert bra.guard == pred(1)
        assert bra.guard_sense is False

    def test_brackets_are_decorative(self):
        kernel = parse_kernel(
            ".kernel k\nentry:\n ldg R1, [R0]\n stg [R1], R1\n exit\n"
        )
        ldg = kernel.blocks[0].instructions[0]
        assert ldg.srcs == (gpr(0),)

    def test_comments_stripped(self):
        kernel = parse_kernel(
            ".kernel k  ; trailing\nentry:\n"
            "  mov R1, 4   # comment\n  exit ; done\n"
        )
        assert kernel.blocks[0].instructions[0].srcs == (Immediate(4),)

    def test_immediate_formats(self):
        kernel = parse_kernel(
            ".kernel k\nentry:\n mov R1, 0x10\n fmul R2, R1, 2.5\n exit\n"
        )
        assert kernel.blocks[0].instructions[0].srcs[0] == Immediate(16)
        assert kernel.blocks[0].instructions[1].srcs[1] == Immediate(2.5)

    def test_negative_immediate(self):
        kernel = parse_kernel(".kernel k\nentry:\n mov R1, -3\n exit\n")
        assert kernel.blocks[0].instructions[0].srcs[0] == Immediate(-3)

    def test_multiple_kernels(self):
        kernels = parse_kernels(
            ".kernel a\nentry:\n exit\n.kernel b\nentry:\n exit\n"
        )
        assert [k.name for k in kernels] == ["a", "b"]

    def test_livein_comma_separated(self):
        kernel = parse_kernel(
            ".kernel k\n.livein R0, R1\nentry:\n exit\n"
        )
        assert kernel.live_in == (gpr(0), gpr(1))

    def test_wide_register(self):
        kernel = parse_kernel(
            ".kernel k\n.livein RD0\nentry:\n mov RD2, RD0\n exit\n"
        )
        mov = kernel.blocks[0].instructions[0]
        assert mov.dst == gpr(2, 64)


class TestParseErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "entry:\n exit\n",                      # before .kernel
            ".kernel\nentry:\n exit\n",             # missing name
            ".kernel k\nentry:\n frob R1, R2\n",    # unknown opcode
            ".kernel k\nentry:\n iadd R1\n exit\n",  # arity
            ".kernel k\nentry:\n iadd 4, R1, R2\n",  # dst immediate
            ".kernel k\nentry:\n bra a, b\n",        # bra arity
            ".kernel k\nentry:\n @P0\n exit\n",      # guard alone
            ".kernel k\nentry:\n @R0 bra entry\n",   # non-pred guard
            ".kernel k\nentry:\n mov R1, ???\n",     # bad operand
        ],
    )
    def test_syntax_errors(self, text):
        with pytest.raises(AsmSyntaxError):
            parse_kernels(text)

    def test_parse_kernel_rejects_multiple(self):
        # AsmSyntaxError (a ValueError) so every caller reports parse
        # problems through one exception type, traceback-free.
        with pytest.raises(AsmSyntaxError) as excinfo:
            parse_kernel(
                ".kernel a\nentry:\n exit\n.kernel b\nentry:\n exit\n"
            )
        assert "expected exactly 1 kernel" in str(excinfo.value)
        assert isinstance(excinfo.value, ValueError)


class TestRoundTrip:
    def test_format_reparse(self, loop_kernel, hammock_kernel):
        for kernel in (loop_kernel, hammock_kernel):
            text = format_kernel(kernel)
            reparsed = parse_kernel(text)
            assert reparsed.name == kernel.name
            assert reparsed.num_instructions == kernel.num_instructions
            for (_, a), (_, b) in zip(
                kernel.instructions(), reparsed.instructions()
            ):
                assert a.opcode is b.opcode
                assert a.dst == b.dst
                assert a.srcs == b.srcs
                assert a.target == b.target
                assert a.guard == b.guard


class TestAnnotatedPrinting:
    def test_annotations_shown(self, loop_kernel):
        from repro.alloc import AllocationConfig, allocate_kernel
        from repro.ir import format_allocated_kernel

        allocate_kernel(loop_kernel, AllocationConfig.best_paper_config())
        text = format_allocated_kernel(loop_kernel)
        assert "end-strand" in text
        assert "ORF[" in text or "LRF[" in text

"""Unit tests for basic blocks and kernels (structure, CFG edges,
validation)."""

import pytest

from repro.ir import (
    BasicBlock,
    Kernel,
    KernelBuilder,
    KernelValidationError,
    Opcode,
    parse_kernel,
)
from repro.ir.registers import gpr, pred


def _branchy_kernel() -> Kernel:
    b = KernelBuilder("branchy", live_in=[gpr(0)])
    b.block("entry")
    b.op(Opcode.SETP, pred(0), gpr(0), 5)
    b.bra("other", guard=pred(0))
    b.block("fall")
    b.op(Opcode.IADD, gpr(1), gpr(0), 1)
    b.bra("end")
    b.block("other")
    b.op(Opcode.IADD, gpr(1), gpr(0), 2)
    b.block("end")
    b.op(Opcode.STG, None, gpr(0), gpr(1))
    b.exit()
    return b.build()


class TestBasicBlock:
    def test_terminator_detection(self):
        from repro.ir.instructions import Instruction

        block = BasicBlock("b")
        assert block.terminator is None
        block.append(Instruction(Opcode.IADD, gpr(0), (gpr(1), gpr(2))))
        assert block.terminator is None

    def test_falls_through_rules(self):
        from repro.ir.instructions import Instruction

        block = BasicBlock("b")
        block.append(Instruction(Opcode.IADD, gpr(0), (gpr(1), gpr(2))))
        assert block.falls_through
        block.append(Instruction(Opcode.BRA, None, (), target="x"))
        assert not block.falls_through

    def test_conditional_branch_falls_through(self):
        from repro.ir.instructions import Instruction

        block = BasicBlock("b")
        block.append(
            Instruction(Opcode.BRA, None, (), guard=pred(0), target="x")
        )
        assert block.falls_through
        assert block.branch_target == "x"

    def test_exit_does_not_fall_through(self):
        from repro.ir.instructions import Instruction

        block = BasicBlock("b")
        block.append(Instruction(Opcode.EXIT, None, ()))
        assert not block.falls_through


class TestKernelStructure:
    def test_successors_conditional(self):
        kernel = _branchy_kernel()
        entry = kernel.block_index("entry")
        assert set(kernel.successors(entry)) == {
            kernel.block_index("other"),
            kernel.block_index("fall"),
        }

    def test_successors_unconditional(self):
        kernel = _branchy_kernel()
        fall = kernel.block_index("fall")
        assert kernel.successors(fall) == (kernel.block_index("end"),)

    def test_predecessors(self):
        kernel = _branchy_kernel()
        preds = kernel.predecessors_map()
        end = kernel.block_index("end")
        assert set(preds[end]) == {
            kernel.block_index("fall"),
            kernel.block_index("other"),
        }

    def test_backward_edges(self, loop_kernel):
        targets = loop_kernel.backward_branch_targets()
        assert targets == {loop_kernel.block_index("loop")}

    def test_no_backward_edges_in_dag(self):
        assert _branchy_kernel().backward_branch_targets() == set()

    def test_instruction_refs_are_sequential(self, loop_kernel):
        positions = [ref.position for ref, _ in loop_kernel.instructions()]
        assert positions == list(range(loop_kernel.num_instructions))

    def test_instruction_at_round_trip(self, loop_kernel):
        for ref, instruction in loop_kernel.instructions():
            assert loop_kernel.instruction_at(ref) is instruction

    def test_registers_used(self, straight_kernel):
        regs = straight_kernel.registers_used()
        assert gpr(0) in regs and gpr(7) in regs

    def test_num_architectural_registers(self, straight_kernel):
        assert straight_kernel.num_architectural_registers == 8


class TestValidation:
    def test_unknown_branch_target(self):
        b = KernelBuilder("bad")
        b.block("entry")
        b.bra("nowhere")
        with pytest.raises(KernelValidationError):
            b.build()

    def test_fall_off_end(self):
        b = KernelBuilder("bad")
        b.block("entry")
        b.op(Opcode.IADD, gpr(0), 1, 2)
        with pytest.raises(KernelValidationError):
            b.build()

    def test_empty_block(self):
        b = KernelBuilder("bad")
        b.block("entry")
        b.block("second")
        b.exit()
        with pytest.raises(KernelValidationError):
            b.build()

    def test_duplicate_labels(self):
        b = KernelBuilder("bad")
        b.block("entry")
        b.exit()
        b.block("entry")
        b.exit()
        with pytest.raises(KernelValidationError):
            b.build()

    def test_mid_block_branch_rejected(self):
        from repro.ir.instructions import Instruction

        block = BasicBlock("entry")
        block.append(Instruction(Opcode.BRA, None, (), target="entry"))
        block.append(Instruction(Opcode.EXIT, None, ()))
        with pytest.raises(KernelValidationError):
            Kernel("bad", [block]).validate()

    def test_no_blocks(self):
        with pytest.raises(KernelValidationError):
            Kernel("bad", []).validate()

    def test_valid_kernels_pass(self, loop_kernel, hammock_kernel):
        loop_kernel.validate()
        hammock_kernel.validate()


class TestBuilder:
    def test_immediate_coercion(self):
        b = KernelBuilder("k")
        b.block("entry")
        inst = b.op(Opcode.IADD, gpr(0), gpr(1), 42)
        b.exit()
        from repro.ir.instructions import Immediate

        assert inst.srcs[1] == Immediate(42)

    def test_float_coercion(self):
        b = KernelBuilder("k")
        b.block("entry")
        inst = b.op(Opcode.FMUL, gpr(0), gpr(1), 2.5)
        b.exit()
        assert inst.srcs[1].value == 2.5

    def test_bad_source_type_rejected(self):
        b = KernelBuilder("k")
        b.block("entry")
        with pytest.raises(TypeError):
            b.op(Opcode.IADD, gpr(0), gpr(1), "nope")

    def test_emit_without_block_rejected(self):
        b = KernelBuilder("k")
        with pytest.raises(ValueError):
            b.op(Opcode.IADD, gpr(0), 1, 2)

    def test_reset_annotations(self, loop_kernel):
        for _, inst in loop_kernel.instructions():
            inst.ensure_default_annotations()
            inst.ends_strand = True
        loop_kernel.reset_annotations()
        assert all(
            inst.dst_ann is None and not inst.ends_strand
            for _, inst in loop_kernel.instructions()
        )

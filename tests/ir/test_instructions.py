"""Unit tests for the instruction model."""

import pytest

from repro.ir.instructions import (
    DestAnnotation,
    FunctionalUnit,
    Immediate,
    Instruction,
    LatencyClass,
    Opcode,
    SourceAnnotation,
)
from repro.ir.registers import gpr, pred
from repro.levels import Level


class TestOpcodeMetadata:
    def test_alu_opcodes_private(self):
        for opcode in (Opcode.IADD, Opcode.FFMA, Opcode.MOV, Opcode.SETP):
            assert opcode.unit is FunctionalUnit.ALU
            assert not opcode.unit.is_shared

    def test_shared_units(self):
        assert Opcode.SIN.unit is FunctionalUnit.SFU
        assert Opcode.LDG.unit is FunctionalUnit.MEM
        assert Opcode.TEX.unit is FunctionalUnit.TEX
        for opcode in (Opcode.SIN, Opcode.LDG, Opcode.TEX):
            assert opcode.unit.is_shared

    def test_long_latency_classification(self):
        assert Opcode.LDG.is_long_latency
        assert Opcode.TEX.is_long_latency
        assert not Opcode.LDS.is_long_latency
        assert not Opcode.SIN.is_long_latency
        assert not Opcode.STG.is_long_latency

    def test_latency_classes(self):
        assert Opcode.IADD.latency_class is LatencyClass.ALU
        assert Opcode.RCP.latency_class is LatencyClass.SFU
        assert Opcode.LDS.latency_class is LatencyClass.SHARED_MEM
        assert Opcode.LDG.latency_class is LatencyClass.DRAM
        assert Opcode.TEX.latency_class is LatencyClass.TEXTURE

    def test_branch_and_exit_flags(self):
        assert Opcode.BRA.is_branch and not Opcode.BRA.is_exit
        assert Opcode.EXIT.is_exit and not Opcode.EXIT.is_branch


class TestValidation:
    def test_missing_dest_rejected(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.IADD, None, (gpr(1), gpr(2)))

    def test_unwanted_dest_rejected(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.STG, gpr(0), (gpr(1), gpr(2)))

    def test_wrong_arity_rejected(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.IADD, gpr(0), (gpr(1),))

    def test_bra_requires_target(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.BRA, None, ())

    def test_non_branch_rejects_target(self):
        with pytest.raises(ValueError):
            Instruction(
                Opcode.IADD, gpr(0), (gpr(1), gpr(2)), target="x"
            )

    def test_setp_must_write_pred(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.SETP, gpr(0), (gpr(1), gpr(2)))
        Instruction(Opcode.SETP, pred(0), (gpr(1), gpr(2)))

    def test_alu_cannot_write_pred(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.IADD, pred(0), (gpr(1), gpr(2)))


class TestOperandQueries:
    def test_gpr_reads_excludes_immediates_and_preds(self):
        inst = Instruction(
            Opcode.SELP, gpr(0), (gpr(1), Immediate(4), pred(0))
        )
        assert inst.gpr_reads() == ((0, gpr(1)),)

    def test_gpr_reads_preserves_slots(self):
        inst = Instruction(
            Opcode.FFMA, gpr(0), (gpr(1), gpr(2), gpr(3))
        )
        assert inst.gpr_reads() == (
            (0, gpr(1)),
            (1, gpr(2)),
            (2, gpr(3)),
        )

    def test_gpr_write_excludes_pred(self):
        setp = Instruction(Opcode.SETP, pred(0), (gpr(1), gpr(2)))
        assert setp.gpr_write() is None
        add = Instruction(Opcode.IADD, gpr(0), (gpr(1), gpr(2)))
        assert add.gpr_write() == gpr(0)

    def test_store_has_no_write(self):
        stg = Instruction(Opcode.STG, None, (gpr(0), gpr(1)))
        assert stg.gpr_write() is None
        assert len(stg.gpr_reads()) == 2


class TestAnnotations:
    def test_defaults_are_mrf(self):
        inst = Instruction(Opcode.IADD, gpr(0), (gpr(1), gpr(2)))
        inst.ensure_default_annotations()
        assert inst.dst_ann.levels == (Level.MRF,)
        assert all(a.level is Level.MRF for a in inst.src_anns)

    def test_clear_annotations(self):
        inst = Instruction(Opcode.IADD, gpr(0), (gpr(1), gpr(2)))
        inst.ensure_default_annotations()
        inst.ends_strand = True
        inst.clear_annotations()
        assert inst.dst_ann is None
        assert inst.src_anns is None
        assert not inst.ends_strand

    def test_dest_annotation_writes(self):
        ann = DestAnnotation(levels=(Level.ORF, Level.MRF), orf_entry=1)
        assert ann.writes(Level.ORF)
        assert ann.writes(Level.MRF)
        assert not ann.writes(Level.LRF)

    def test_source_annotation_defaults(self):
        ann = SourceAnnotation()
        assert ann.level is Level.MRF
        assert ann.orf_write_entry is None


class TestFormatting:
    def test_str_plain(self):
        inst = Instruction(Opcode.IADD, gpr(0), (gpr(1), Immediate(4)))
        assert str(inst) == "iadd R0, R1, 4"

    def test_str_guard(self):
        inst = Instruction(
            Opcode.BRA, None, (), guard=pred(0), guard_sense=False,
            target="loop",
        )
        assert str(inst) == "@!P0 bra loop"

    def test_str_ends_strand(self):
        inst = Instruction(Opcode.EXIT, None, ())
        inst.ends_strand = True
        assert "end-strand" in str(inst)

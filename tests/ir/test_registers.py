"""Unit tests for the register model."""

import pytest

from repro.ir.registers import (
    RegClass,
    Register,
    gpr,
    parse_register,
    pred,
)


class TestConstruction:
    def test_gpr_defaults(self):
        reg = gpr(3)
        assert reg.index == 3
        assert reg.reg_class is RegClass.GPR
        assert reg.width == 32

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            gpr(-1)

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            Register(0, RegClass.GPR, width=48)

    @pytest.mark.parametrize("width", [32, 64, 128])
    def test_valid_widths(self, width):
        assert gpr(0, width).width == width

    def test_pred_width_canonicalised(self):
        assert pred(0).width == 32


class TestProperties:
    @pytest.mark.parametrize(
        "width,words", [(32, 1), (64, 2), (128, 4)]
    )
    def test_num_words(self, width, words):
        assert gpr(1, width).num_words == words

    def test_is_gpr_and_is_pred(self):
        assert gpr(0).is_gpr and not gpr(0).is_pred
        assert pred(0).is_pred and not pred(0).is_gpr

    @pytest.mark.parametrize(
        "reg,name",
        [
            (gpr(5), "R5"),
            (gpr(5, 64), "RD5"),
            (gpr(5, 128), "RQ5"),
            (pred(2), "P2"),
        ],
    )
    def test_names(self, reg, name):
        assert reg.name == name
        assert str(reg) == name

    def test_hashable_and_equal(self):
        assert gpr(3) == gpr(3)
        assert gpr(3) != gpr(3, 64)
        assert len({gpr(3), gpr(3), pred(3)}) == 2

    def test_ordering(self):
        assert sorted([gpr(5), gpr(2)])[0] == gpr(2)


class TestParsing:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("R0", gpr(0)),
            ("r17", gpr(17)),
            ("RD2", gpr(2, 64)),
            ("RQ1", gpr(1, 128)),
            ("P3", pred(3)),
            ("  R4  ", gpr(4)),
        ],
    )
    def test_parse_valid(self, text, expected):
        assert parse_register(text) == expected

    @pytest.mark.parametrize(
        "text", ["", "X1", "R", "R-1", "Rx", "1R", "RD", "P"]
    )
    def test_parse_invalid(self, text):
        with pytest.raises(ValueError):
            parse_register(text)

    def test_round_trip(self):
        for reg in [gpr(0), gpr(9, 64), gpr(2, 128), pred(7)]:
            assert parse_register(reg.name) == reg

"""Tests for allocation-annotation serialisation."""

import pytest

from repro.alloc import (
    AllocationConfig,
    AnnotationFormatError,
    allocate_kernel,
    dump_annotations,
    load_annotations,
)
from repro.ir import format_allocated_kernel, parse_kernel
from repro.ir.registers import gpr
from repro.sim import WarpInput, build_traces
from repro.sim.verify import verify_trace
from tests.conftest import LOOP_ASM


class TestRoundTrip:
    def test_annotations_identical_after_reload(self, loop_kernel):
        result = allocate_kernel(
            loop_kernel, AllocationConfig.best_paper_config()
        )
        before = format_allocated_kernel(loop_kernel)
        text = dump_annotations(loop_kernel)

        fresh = parse_kernel(LOOP_ASM)
        load_annotations(fresh, text)
        assert format_allocated_kernel(fresh) == before

    def test_reloaded_annotations_verify(self, loop_kernel, loop_inputs):
        result = allocate_kernel(
            loop_kernel, AllocationConfig.best_paper_config()
        )
        text = dump_annotations(loop_kernel)
        fresh = parse_kernel(LOOP_ASM)
        load_annotations(fresh, text)
        traces = build_traces(fresh, loop_inputs)
        for trace in traces.warp_traces:
            verify_trace(fresh, result.partition, trace)

    def test_unallocated_kernel_round_trips(self, straight_kernel):
        straight_kernel.reset_annotations()
        text = dump_annotations(straight_kernel)
        load_annotations(straight_kernel, text)
        assert all(
            inst.dst_ann is None
            for _, inst in straight_kernel.instructions()
        )


class TestValidation:
    def test_wrong_kernel_rejected(self, loop_kernel, straight_kernel):
        allocate_kernel(loop_kernel, AllocationConfig(orf_entries=3))
        text = dump_annotations(loop_kernel)
        with pytest.raises(AnnotationFormatError):
            load_annotations(straight_kernel, text)

    def test_modified_kernel_rejected(self, loop_kernel):
        allocate_kernel(loop_kernel, AllocationConfig(orf_entries=3))
        text = dump_annotations(loop_kernel)
        shorter = parse_kernel(
            ".kernel loop_kernel\n.livein R0\nentry:\n"
            " iadd R1, R0, 1\n exit\n"
        )
        with pytest.raises(AnnotationFormatError):
            load_annotations(shorter, text)

    def test_malformed_json_rejected(self, loop_kernel):
        with pytest.raises(AnnotationFormatError):
            load_annotations(loop_kernel, "{not json")

    def test_bad_level_rejected(self, loop_kernel):
        allocate_kernel(loop_kernel, AllocationConfig(orf_entries=3))
        text = dump_annotations(loop_kernel).replace(
            '"mrf"', '"l2cache"'
        )
        with pytest.raises(AnnotationFormatError):
            load_annotations(loop_kernel, text)

    def test_version_checked(self, loop_kernel):
        text = dump_annotations(loop_kernel).replace(
            '"format_version": 1', '"format_version": 99'
        )
        with pytest.raises(AnnotationFormatError):
            load_annotations(loop_kernel, text)

"""Batched multi-config allocation equals independent per-config runs.

``allocate_kernels_batch`` shares one scheme-independent
:class:`~repro.alloc.analysis.KernelAnalysis` across every config of a
sweep and runs only the per-config levels pass N times.  The contract
is *exact* equality with N independent ``allocate_kernel`` calls:
operand annotations (including the ``ends_strand`` bits the service
path serializes), assignment structure, summaries, and — with
recorders attached — the full provenance event stream.  The fuzz
corpus plus hypothesis-drawn seeds are the oracle, covering divergent
hammocks and guarded forward branches.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.alloc import (
    AllocationConfig,
    allocate_kernel,
    allocate_kernels_batch,
    clear_analysis_cache,
    kernel_analysis,
)
from repro.alloc.analysis import _ANALYSIS_CACHE
from repro.alloc.serialize import annotations_to_dict
from repro.obs.provenance import ProvenanceRecorder
from repro.workloads import generate_workload

from ..sim.test_fuzz_regressions import CORPUS_CONFIGS, FUZZ_CORPUS

#: The sweep the equality property runs: the corpus configs (including
#: the single-entry/no-LRF config with forward branches that exposed
#: fuzz seed 320) plus split-LRF, baseline-scoped, and
#: persistent-strand flavours — two analysis flavours in one batch.
SWEEP_CONFIGS = CORPUS_CONFIGS + [
    AllocationConfig(orf_entries=2, use_lrf=True, split_lrf=True),
    AllocationConfig.baseline_two_level(),
    AllocationConfig(orf_entries=3, assume_persistent_strands=True),
    AllocationConfig(
        orf_entries=1, use_lrf=True, allow_forward_branches=True
    ),
]


def _assignment_shape(result):
    """Comparable projection of every placement decision."""
    webs = [
        (
            a.web.strand_id,
            str(a.web.reg),
            a.level.name,
            a.entries,
            tuple(r.position for r in a.covered_reads),
            a.partial,
            a.savings,
        )
        for a in result.web_assignments
    ]
    reads = [
        (
            a.candidate.strand_id,
            str(a.candidate.reg),
            a.entries,
            tuple(r.position for r in a.covered_reads),
            a.partial,
            a.savings,
        )
        for a in result.read_assignments
    ]
    return webs, reads


def _check_batch_equals_singles(kernel, configs):
    batch_recorders = [ProvenanceRecorder() for _ in configs]
    batch = allocate_kernels_batch(
        kernel, configs, recorders=batch_recorders
    )
    for config, recorder, batched in zip(configs, batch_recorders, batch):
        # Independent run: cold analysis, nothing shared with the batch.
        clear_analysis_cache()
        single_recorder = ProvenanceRecorder()
        single = allocate_kernel(
            kernel.clone(), config, recorder=single_recorder
        )
        assert annotations_to_dict(batched.kernel) == annotations_to_dict(
            single.kernel
        )
        assert batched.summary() == single.summary()
        assert _assignment_shape(batched) == _assignment_shape(single)
        assert recorder.events == single_recorder.events
        # ends_strand bits must be stamped identically on the batched
        # clone (annotations_to_dict covers them, but be explicit: the
        # printer and serializer both consume these).
        batched_bits = [
            i.ends_strand for _, i in batched.kernel.instructions()
        ]
        single_bits = [
            i.ends_strand for _, i in single.kernel.instructions()
        ]
        assert batched_bits == single_bits


@pytest.mark.parametrize("seed", FUZZ_CORPUS)
def test_fuzz_corpus_batch_equals_singles(seed):
    """Every corpus seed: the batch is bit-equal to per-config runs."""
    spec = generate_workload(seed, num_warps=1)
    _check_batch_equals_singles(spec.kernel, SWEEP_CONFIGS)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2000))
def test_random_kernels_batch_equals_singles(seed):
    spec = generate_workload(seed, num_warps=1)
    _check_batch_equals_singles(spec.kernel, SWEEP_CONFIGS)


def test_batch_result_order_matches_configs():
    spec = generate_workload(42, num_warps=1)
    results = allocate_kernels_batch(spec.kernel, SWEEP_CONFIGS)
    assert len(results) == len(SWEEP_CONFIGS)
    for config, result in zip(SWEEP_CONFIGS, results):
        assert result.config == config


def test_batch_shares_one_analysis_per_persistence_flavour():
    spec = generate_workload(101, num_warps=1)
    clear_analysis_cache()
    allocate_kernels_batch(spec.kernel, SWEEP_CONFIGS)
    flavours = {c.assume_persistent_strands for c in SWEEP_CONFIGS}
    assert len(_ANALYSIS_CACHE) == len(flavours)


def test_analysis_cache_hits_across_clones():
    spec = generate_workload(7, num_warps=1)
    clear_analysis_cache()
    first = kernel_analysis(spec.kernel)
    again = kernel_analysis(spec.kernel.clone())
    assert again is first
    persistent = kernel_analysis(spec.kernel, assume_persistent=True)
    assert persistent is not first
    assert persistent.assume_persistent


def test_analysis_clone_is_never_annotated():
    """The analysis's pristine clone stays pristine across levels runs."""
    spec = generate_workload(211, num_warps=1)
    clear_analysis_cache()
    analysis = kernel_analysis(spec.kernel)
    allocate_kernels_batch(spec.kernel, SWEEP_CONFIGS)
    for _, instruction in analysis.kernel.instructions():
        assert instruction.dst_ann is None
        assert instruction.src_anns is None


def test_recorder_does_not_pollute_shared_analysis():
    """Recording one config of a batch leaves the cache reusable: a
    later unrecorded batch from the same cache is unchanged."""
    spec = generate_workload(320, num_warps=1)
    clear_analysis_cache()
    plain = allocate_kernels_batch(spec.kernel, SWEEP_CONFIGS)
    recorders = [ProvenanceRecorder() for _ in SWEEP_CONFIGS]
    recorded = allocate_kernels_batch(
        spec.kernel, SWEEP_CONFIGS, recorders=recorders
    )
    rerun = allocate_kernels_batch(spec.kernel, SWEEP_CONFIGS)
    for a, b, c in zip(plain, recorded, rerun):
        assert annotations_to_dict(a.kernel) == annotations_to_dict(b.kernel)
        assert annotations_to_dict(a.kernel) == annotations_to_dict(c.kernel)
    assert any(r.events for r in recorders)


def test_mismatched_analysis_flavour_rejected():
    spec = generate_workload(7, num_warps=1)
    analysis = kernel_analysis(spec.kernel, assume_persistent=True)
    with pytest.raises(ValueError):
        allocate_kernel(
            spec.kernel.clone(), AllocationConfig(), analysis=analysis
        )


def test_recorders_length_must_match_configs():
    spec = generate_workload(7, num_warps=1)
    with pytest.raises(ValueError):
        allocate_kernels_batch(
            spec.kernel, SWEEP_CONFIGS, recorders=[ProvenanceRecorder()]
        )

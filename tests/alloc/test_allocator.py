"""Unit and integration tests for the hierarchy allocator."""

import pytest

from repro.alloc import AllocationConfig, allocate_kernel
from repro.ir import parse_kernel
from repro.ir.registers import gpr
from repro.levels import Level
from repro.sim import WarpInput, build_traces
from repro.sim.verify import verify_trace


def _allocated_levels(kernel):
    """Map (position, slot) -> read level and position -> write levels."""
    reads = {}
    writes = {}
    for ref, instruction in kernel.instructions():
        if instruction.src_anns:
            for slot, _ in instruction.gpr_reads():
                reads[(ref.position, slot)] = instruction.src_anns[slot]
        if instruction.dst_ann and instruction.gpr_write() is not None:
            writes[ref.position] = instruction.dst_ann.levels
    return reads, writes


class TestTwoLevelAllocation:
    def test_chain_values_go_to_orf(self, straight_kernel):
        result = allocate_kernel(
            straight_kernel, AllocationConfig(orf_entries=3)
        )
        orf = result.assignments_for_level(Level.ORF)
        allocated_regs = {a.web.reg for a in orf}
        assert gpr(4) in allocated_regs or gpr(5) in allocated_regs

    def test_long_latency_results_stay_mrf(self, straight_kernel):
        allocate_kernel(straight_kernel, AllocationConfig(orf_entries=3))
        _, writes = _allocated_levels(straight_kernel)
        assert writes[0] == (Level.MRF,)  # the ldg result

    def test_live_out_values_dual_write(self, straight_kernel):
        allocate_kernel(straight_kernel, AllocationConfig(orf_entries=3))
        _, writes = _allocated_levels(straight_kernel)
        # R6 (position 3) is read in-strand (stg) AND in the next
        # strand: ORF + MRF.
        assert set(writes[3]) == {Level.ORF, Level.MRF}

    def test_entry_bounds_respected(self, straight_kernel):
        result = allocate_kernel(
            straight_kernel, AllocationConfig(orf_entries=2)
        )
        for assignment in result.assignments_for_level(Level.ORF):
            for entry in assignment.entries:
                assert 0 <= entry < 2

    def test_one_entry_orf_still_works(self, loop_kernel):
        result = allocate_kernel(
            loop_kernel, AllocationConfig(orf_entries=1)
        )
        for assignment in result.assignments_for_level(Level.ORF):
            assert assignment.entries == (0,)


class TestThreeLevelAllocation:
    def test_lrf_used(self, loop_kernel):
        result = allocate_kernel(
            loop_kernel, AllocationConfig(orf_entries=3, use_lrf=True)
        )
        assert result.assignments_for_level(Level.LRF)

    def test_lrf_values_not_in_orf(self, loop_kernel):
        result = allocate_kernel(
            loop_kernel, AllocationConfig(orf_entries=3, use_lrf=True)
        )
        lrf_webs = {a.web.web_id for a in
                    result.assignments_for_level(Level.LRF)}
        orf_webs = {a.web.web_id for a in
                    result.assignments_for_level(Level.ORF)}
        # Same web never allocated twice... web ids are per-strand, so
        # compare identities instead.
        lrf_ids = {id(a.web) for a in
                   result.assignments_for_level(Level.LRF)}
        orf_ids = {id(a.web) for a in
                   result.assignments_for_level(Level.ORF)}
        assert not lrf_ids & orf_ids

    def test_shared_consumed_values_avoid_lrf(self):
        kernel = parse_kernel(
            """
            .kernel s
            .livein R0 R1
            entry:
                iadd R2, R0, 1
                stg [R1], R2
                iadd R3, R0, 2
                iadd R4, R3, 3
                stg [R1], R4
                exit
            """
        )
        result = allocate_kernel(
            kernel, AllocationConfig(orf_entries=3, use_lrf=True)
        )
        for assignment in result.assignments_for_level(Level.LRF):
            # R2 and R4 feed stores (shared datapath): LRF-ineligible.
            assert assignment.web.reg == gpr(3)

    def test_split_lrf_slot_binding(self):
        kernel = parse_kernel(
            """
            .kernel sl
            .livein R0 R1
            entry:
                iadd R2, R0, 1
                iadd R3, R0, R2
                iadd R4, R3, 7
                iadd R5, R4, R4
                stg [R1], R5
                exit
            """
        )
        result = allocate_kernel(
            kernel,
            AllocationConfig(orf_entries=3, use_lrf=True, split_lrf=True),
        )
        for assignment in result.assignments_for_level(Level.LRF):
            slots = assignment.web.read_slots()
            if slots:
                (slot,) = slots
                assert assignment.entries == (slot,)

    def test_multi_slot_value_not_in_split_lrf(self):
        kernel = parse_kernel(
            """
            .kernel ms
            .livein R0 R1
            entry:
                iadd R2, R0, 1
                iadd R3, R2, R0
                iadd R4, R0, R2
                stg [R1], R3
                stg [R1], R4
                exit
            """
        )
        result = allocate_kernel(
            kernel,
            AllocationConfig(orf_entries=3, use_lrf=True, split_lrf=True),
        )
        for assignment in result.assignments_for_level(Level.LRF):
            # R2 is read in slot 0 (of R3's def) and slot 1 (of R4's):
            # must not be in the split LRF.
            assert assignment.web.reg != gpr(2)


class TestOptimisations:
    def test_read_operand_allocation(self):
        kernel = parse_kernel(
            """
            .kernel ro
            .livein R0 R1
            entry:
                iadd R2, R0, 1
                iadd R3, R0, 2
                iadd R4, R0, 3
                iadd R5, R0, 4
                stg [R1], R5
                exit
            """
        )
        result = allocate_kernel(kernel, AllocationConfig(orf_entries=3))
        assert result.read_assignments
        (assignment,) = [
            a for a in result.read_assignments if a.candidate.reg == gpr(0)
        ]
        first = assignment.covered_reads[0]
        instruction = kernel.instruction_at(first.site.ref)
        annotation = instruction.src_anns[first.site.slot]
        assert annotation.level is Level.MRF
        assert annotation.orf_write_entry is not None
        for read in assignment.covered_reads[1:]:
            instruction = kernel.instruction_at(read.site.ref)
            annotation = instruction.src_anns[read.site.slot]
            assert annotation.level is Level.ORF

    def test_read_operands_disabled(self):
        kernel = parse_kernel(
            """
            .kernel ro2
            .livein R0 R1
            entry:
                iadd R2, R0, 1
                iadd R3, R0, 2
                stg [R1], R3
                exit
            """
        )
        result = allocate_kernel(
            kernel,
            AllocationConfig(orf_entries=3, enable_read_operands=False),
        )
        assert result.read_assignments == []

    def test_partial_range_under_pressure(self):
        """With a 1-entry ORF and competing values, a long-lived value
        gets a shortened range (Section 4.3)."""
        kernel = parse_kernel(
            """
            .kernel pr
            .livein R0 R1
            entry:
                iadd R2, R0, 1
                iadd R3, R2, 1
                iadd R4, R3, R2
                iadd R5, R4, R3
                iadd R6, R5, R4
                iadd R7, R6, R5
                stg [R1], R7
                stg [R1], R2
                exit
            """
        )
        result = allocate_kernel(kernel, AllocationConfig(orf_entries=1))
        assert any(a.partial for a in result.web_assignments) or all(
            len(a.covered_reads) <= len(a.web.coverable_reads)
            for a in result.web_assignments
        )

    def test_block_scope_baseline(self, hammock_kernel):
        """The Section 4.2 baseline cannot allocate across blocks."""
        result = allocate_kernel(
            hammock_kernel, AllocationConfig.baseline_two_level()
        )
        for assignment in result.web_assignments:
            blocks = {
                d.ref.block_index
                for d in assignment.web.defs
                if d.ref is not None
            }
            blocks |= {
                r.site.ref.block_index for r in assignment.covered_reads
            }
            assert len(blocks) <= 1

    def test_forward_branch_allocation(self, hammock_kernel):
        """Figure 10(c): both hammock defs share one ORF entry and the
        merge read hits the ORF."""
        result = allocate_kernel(
            hammock_kernel, AllocationConfig(orf_entries=3)
        )
        hammock_webs = [
            a for a in result.web_assignments if len(a.web.defs) == 2
        ]
        assert hammock_webs
        (assignment,) = hammock_webs
        for definition in assignment.web.defs:
            instruction = hammock_kernel.instruction_at(definition.ref)
            assert instruction.dst_ann.orf_entry == assignment.entries[0]


class TestSummary:
    def test_summary_counts(self, loop_kernel):
        result = allocate_kernel(
            loop_kernel, AllocationConfig.best_paper_config()
        )
        summary = result.summary()
        assert summary["strands"] == result.partition.num_strands
        assert summary["orf_values"] == len(
            result.assignments_for_level(Level.ORF)
        )

    def test_allocation_is_repeatable(self, loop_kernel):
        config = AllocationConfig.best_paper_config()
        first = allocate_kernel(loop_kernel, config).summary()
        second = allocate_kernel(loop_kernel, config).summary()
        assert first == second


class TestEndToEndValidity:
    @pytest.mark.parametrize(
        "config",
        [
            AllocationConfig(orf_entries=1),
            AllocationConfig(orf_entries=3),
            AllocationConfig(orf_entries=8),
            AllocationConfig(orf_entries=3, use_lrf=True),
            AllocationConfig.best_paper_config(),
            AllocationConfig.baseline_two_level(),
        ],
    )
    def test_all_fixtures_verify(
        self, config, straight_kernel, loop_kernel, hammock_kernel,
        uncertain_kernel,
    ):
        inputs = [WarpInput({gpr(0): 0, gpr(1): 500, gpr(2): 4,
                             gpr(6): 9})]
        for kernel in (
            straight_kernel, loop_kernel, hammock_kernel, uncertain_kernel
        ):
            result = allocate_kernel(kernel, config)
            traces = build_traces(kernel, inputs)
            for trace in traces.warp_traces:
                verify_trace(kernel, result.partition, trace)


class TestStrandReport:
    def test_rows_cover_all_strands(self, loop_kernel):
        result = allocate_kernel(
            loop_kernel, AllocationConfig.best_paper_config()
        )
        report = result.strand_report()
        assert len(report) == result.partition.num_strands
        assert sum(r["instructions"] for r in report) == (
            loop_kernel.num_instructions
        )

    def test_savings_nonnegative(self, loop_kernel):
        result = allocate_kernel(
            loop_kernel, AllocationConfig.best_paper_config()
        )
        for row in result.strand_report():
            assert row["estimated_savings_pj"] >= 0.0

    def test_counts_match_summary(self, straight_kernel):
        result = allocate_kernel(
            straight_kernel, AllocationConfig.best_paper_config()
        )
        report = result.strand_report()
        summary = result.summary()
        assert sum(r["orf_values"] for r in report) == (
            summary["orf_values"]
        )
        assert sum(r["lrf_values"] for r in report) == (
            summary["lrf_values"]
        )

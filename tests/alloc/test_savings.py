"""Unit tests for the energy-savings functions (Figures 6 and 9).

The hand-computed expectations use the warp-level energy model: one
warp operand access = 8 x 128-bit entries plus 32 x 32-bit wire moves.
"""

import pytest

from repro.alloc.savings import (
    occupancy_slots,
    priority,
    read_operand_savings,
    value_allocation_savings,
)
from repro.alloc.webs import ReadOperandCandidate, Web, WebRead
from repro.analysis.reaching import Definition, ReadSite
from repro.energy.model import EnergyModel
from repro.ir.instructions import FunctionalUnit
from repro.ir.kernel import InstructionRef
from repro.ir.registers import gpr
from repro.levels import Level

MODEL = EnergyModel(orf_entries=3)


def _read(position, slot=0, shared=False, mixed=False, reg=gpr(7)):
    site = ReadSite(InstructionRef(0, position, position), slot, reg)
    return WebRead(site=site, shared_unit=shared, mixed=mixed)


def _web(num_reads, live_out=False, def_position=0, shared_reads=0,
         reg=gpr(7)):
    definition = Definition(
        0, reg, InstructionRef(0, def_position, def_position)
    )
    reads = [
        _read(def_position + 1 + i, shared=(i < shared_reads), reg=reg)
        for i in range(num_reads)
    ]
    return Web(
        web_id=0,
        strand_id=0,
        reg=reg,
        defs=[definition],
        def_units=[FunctionalUnit.ALU],
        reads=reads,
        live_out=live_out,
    )


class TestFigure6:
    def test_formula_not_live_out(self):
        """savings = reads*(MRFrd - ORFrd) - ORFwr + MRFwr."""
        web = _web(num_reads=2)
        expected = (
            2 * (MODEL.read_energy(Level.MRF) - MODEL.read_energy(Level.ORF))
            - MODEL.write_energy(Level.ORF)
            + MODEL.write_energy(Level.MRF)
        )
        actual = value_allocation_savings(
            web, web.coverable_reads, Level.ORF, MODEL
        )
        assert actual == pytest.approx(expected)

    def test_formula_live_out(self):
        """Live-out values keep the MRF write (no elision term)."""
        web = _web(num_reads=2, live_out=True)
        expected = (
            2 * (MODEL.read_energy(Level.MRF) - MODEL.read_energy(Level.ORF))
            - MODEL.write_energy(Level.ORF)
        )
        actual = value_allocation_savings(
            web, web.coverable_reads, Level.ORF, MODEL
        )
        assert actual == pytest.approx(expected)

    def test_more_reads_more_savings(self):
        s1 = value_allocation_savings(
            _web(1), _web(1).coverable_reads, Level.ORF, MODEL
        )
        s3 = value_allocation_savings(
            _web(3), _web(3).coverable_reads, Level.ORF, MODEL
        )
        assert s3 > s1

    def test_lrf_saves_more_than_orf(self):
        web = _web(num_reads=1)
        orf = value_allocation_savings(
            web, web.coverable_reads, Level.ORF, MODEL
        )
        lrf = value_allocation_savings(
            web, web.coverable_reads, Level.LRF, MODEL
        )
        assert lrf > orf

    def test_mrf_level_saves_nothing(self):
        web = _web(num_reads=3)
        assert value_allocation_savings(
            web, web.coverable_reads, Level.MRF, MODEL
        ) == 0.0

    def test_force_mrf_write_removes_elision(self):
        web = _web(num_reads=2)
        full = value_allocation_savings(
            web, web.coverable_reads, Level.ORF, MODEL
        )
        partial = value_allocation_savings(
            web, web.coverable_reads, Level.ORF, MODEL,
            force_mrf_write=True,
        )
        assert full - partial == pytest.approx(
            MODEL.write_energy(Level.MRF)
        )

    def test_shared_reader_saves_less(self):
        private = _web(num_reads=1)
        shared = _web(num_reads=1, shared_reads=1)
        s_private = value_allocation_savings(
            private, private.coverable_reads, Level.ORF, MODEL
        )
        s_shared = value_allocation_savings(
            shared, shared.coverable_reads, Level.ORF, MODEL
        )
        assert s_private > s_shared

    def test_wide_value_scales_by_words(self):
        narrow = _web(num_reads=1)
        wide = _web(num_reads=1, reg=gpr(7, 64))
        s_narrow = value_allocation_savings(
            narrow, narrow.coverable_reads, Level.ORF, MODEL
        )
        s_wide = value_allocation_savings(
            wide, wide.coverable_reads, Level.ORF, MODEL
        )
        assert s_wide == pytest.approx(2 * s_narrow)

    def test_dead_value_positive_savings(self):
        """A never-read value avoids the MRF write entirely."""
        web = _web(num_reads=0)
        savings = value_allocation_savings(web, [], Level.ORF, MODEL)
        expected = MODEL.write_energy(Level.MRF) - MODEL.write_energy(
            Level.ORF
        )
        assert savings == pytest.approx(expected)
        assert savings > 0


class TestFigure9:
    def _candidate(self, num_reads):
        reads = [_read(10 + i) for i in range(num_reads)]
        return ReadOperandCandidate(
            strand_id=0, reg=gpr(3), reads=reads, coverable_reads=reads
        )

    def test_formula(self):
        """savings = (reads-1)*(MRFrd - ORFrd) - ORFwr."""
        candidate = self._candidate(3)
        expected = (
            2 * (MODEL.read_energy(Level.MRF) - MODEL.read_energy(Level.ORF))
            - MODEL.write_energy(Level.ORF)
        )
        assert read_operand_savings(
            candidate, candidate.reads, MODEL
        ) == pytest.approx(expected)

    def test_single_read_never_profitable(self):
        candidate = self._candidate(1)
        assert read_operand_savings(candidate, candidate.reads, MODEL) < 0

    def test_two_reads_profitable(self):
        candidate = self._candidate(2)
        assert read_operand_savings(candidate, candidate.reads, MODEL) > 0


class TestPriority:
    def test_occupancy_slots(self):
        assert occupancy_slots(3, 7) == 5
        assert occupancy_slots(3, 3) == 1

    def test_priority_prefers_short_ranges(self):
        assert priority(100.0, 0, 1) > priority(100.0, 0, 9)

    def test_priority_scales_with_savings(self):
        assert priority(200.0, 0, 4) == 2 * priority(100.0, 0, 4)

"""Hypothesis property: allocator output never double-books an entry.

The fuzz_320 bug class was two live placements sharing ORF entry 0
over overlapping live ranges (a web and a read-operand group).  The
fix routes every placement through ``windows_conflict``
(repro.alloc.intervals); this test closes the loop by re-deriving the
occupancy window of every placement in the allocator's *output* —
webs as value windows, read-operand groups as closed windows — and
re-checking pairwise disjointness per (strand, entry).  It does not
trust the allocator's internal EntryFile bookkeeping: windows are
rebuilt from the assignments themselves, so a bookkeeping bypass
(the original bug) is caught, not masked.
"""

from hypothesis import given, settings, strategies as st

from repro.alloc import AllocationConfig, allocate_kernel
from repro.alloc.allocator import _web_interval
from repro.alloc.intervals import windows_conflict
from repro.levels import Level
from repro.workloads import generate_workload

_CONFIGS = [
    AllocationConfig(orf_entries=1, use_lrf=False, split_lrf=False,
                     allow_forward_branches=True),
    AllocationConfig(orf_entries=2, use_lrf=False, split_lrf=False),
    AllocationConfig(orf_entries=3),
    AllocationConfig.best_paper_config(),
]


def _orf_windows(result):
    """(strand, entry) -> occupancy windows rebuilt from assignments."""
    windows = {}
    for assignment in result.web_assignments:
        if assignment.level is not Level.ORF:
            continue
        web = assignment.web
        begin, end = _web_interval(web, list(assignment.covered_reads))
        for entry in assignment.entries:
            key = (web.strand_id, entry)
            windows.setdefault(key, []).append(
                ((begin, end, False), f"web {web.reg}")
            )
    for assignment in result.read_assignments:
        covered = assignment.covered_reads
        begin = covered[0].position
        end = covered[-1].position
        candidate = assignment.candidate
        for entry in assignment.entries:
            key = (candidate.strand_id, entry)
            windows.setdefault(key, []).append(
                ((begin, end, True), f"readop {candidate.reg}")
            )
    return windows


@settings(max_examples=60, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2000),
    config=st.sampled_from(_CONFIGS),
)
def test_no_two_live_placements_share_an_entry(seed, config):
    """No two live placements share an ORF entry over an overlapping
    live range (seed-320 bug class, both directions)."""
    spec = generate_workload(seed, num_warps=1)
    result = allocate_kernel(spec.kernel, config)
    for (strand_id, entry), placed in _orf_windows(result).items():
        for i, (window_a, what_a) in enumerate(placed):
            for window_b, what_b in placed[i + 1:]:
                assert not windows_conflict(window_a, window_b), (
                    f"strand {strand_id} ORF[{entry}]: {what_a} "
                    f"{window_a} overlaps {what_b} {window_b}"
                )


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2000))
def test_entry_count_is_respected(seed):
    """A placement never names an entry outside the configured ORF."""
    config = AllocationConfig(orf_entries=2, use_lrf=False,
                              split_lrf=False)
    spec = generate_workload(seed, num_warps=1)
    result = allocate_kernel(spec.kernel, config)
    for assignment in result.web_assignments:
        if assignment.level is Level.ORF:
            assert all(0 <= e < 2 for e in assignment.entries)
    for assignment in result.read_assignments:
        assert all(0 <= e < 2 for e in assignment.entries)

"""Unit tests for register-instance (web) construction."""

import pytest

from repro.alloc.webs import build_strand_values
from repro.analysis.cfg import ControlFlowGraph
from repro.analysis.reaching import ReachingDefinitions
from repro.ir import parse_kernel
from repro.ir.registers import gpr
from repro.strands import partition_strands


def _values(kernel):
    cfg = ControlFlowGraph(kernel)
    partition = partition_strands(kernel, cfg)
    reaching = ReachingDefinitions(kernel, cfg)
    return build_strand_values(kernel, partition, reaching), partition


def _webs_of_reg(strand_values, reg):
    return [
        web
        for values in strand_values
        for web in values.webs
        if web.reg == reg
    ]


class TestBasicWebs:
    def test_chain_values_form_webs(self, straight_kernel):
        strand_values, _ = _values(straight_kernel)
        # R4, R5, R6 are ALU values defined and consumed in strand 0.
        for index in (4, 5, 6):
            webs = _webs_of_reg(strand_values, gpr(index))
            assert len(webs) == 1

    def test_long_latency_def_not_a_web(self, straight_kernel):
        strand_values, _ = _values(straight_kernel)
        assert _webs_of_reg(strand_values, gpr(3)) == []

    def test_read_counts(self, straight_kernel):
        strand_values, _ = _values(straight_kernel)
        (web,) = _webs_of_reg(strand_values, gpr(6))
        # R6 read by stg (strand 0) and by iadd R7 (next strand, mixed
        # or external there).
        in_strand = [r for r in web.reads]
        assert len(in_strand) == 1
        assert web.live_out  # consumed in the next strand

    def test_dead_value_web(self):
        kernel = parse_kernel(
            """
            .kernel dead
            .livein R0
            entry:
                iadd R1, R0, 1
                iadd R2, R0, 2
                stg [R0], R2
                exit
            """
        )
        strand_values, _ = _values(kernel)
        (web,) = _webs_of_reg(strand_values, gpr(1))
        assert web.reads == []
        assert not web.live_out
        assert not web.needs_mrf_write

    def test_store_consumer_is_shared(self):
        kernel = parse_kernel(
            """
            .kernel s
            .livein R0
            entry:
                iadd R1, R0, 1
                stg [R0], R1
                exit
            """
        )
        strand_values, _ = _values(kernel)
        (web,) = _webs_of_reg(strand_values, gpr(1))
        assert web.reads[0].shared_unit
        assert not web.all_private


class TestHammocks:
    def test_both_arm_defs_merge_into_one_web(self, hammock_kernel):
        strand_values, _ = _values(hammock_kernel)
        webs = _webs_of_reg(strand_values, gpr(6))
        assert len(webs) == 1
        assert len(webs[0].defs) == 2

    def test_merge_read_not_mixed(self, hammock_kernel):
        strand_values, _ = _values(hammock_kernel)
        (web,) = _webs_of_reg(strand_values, gpr(6))
        merge_reads = [r for r in web.reads]
        assert merge_reads and not any(r.mixed for r in merge_reads)

    def test_one_sided_def_makes_merge_read_mixed(self):
        """Figure 10(a): R6 written on one side only; the merge read
        must come from the MRF."""
        kernel = parse_kernel(
            """
            .kernel oneside
            .livein R0 R1 R6
            entry:
                lds R3, [R0]
                setp P0, R3, 100
                @P0 bra merge
            big:
                imul R6, R3, 3
            merge:
                iadd R7, R6, 1
                stg [R1], R7
                exit
            """
        )
        strand_values, _ = _values(kernel)
        (web,) = _webs_of_reg(strand_values, gpr(6))
        assert all(read.mixed for read in web.reads)
        assert web.needs_mrf_write


class TestStrandLocality:
    def test_loop_carried_use_not_in_web(self):
        """A value read only in the next iteration flows through the
        MRF even though its static def is in the same strand."""
        kernel = parse_kernel(
            """
            .kernel carried
            .livein R0 R1 R2
            entry:
                mov R3, 0
            loop:
                iadd R4, R3, 1
                iadd R3, R4, 2
                iadd R2, R2, -1
                setp P0, 0, R2
                @P0 bra loop
            done:
                stg [R1], R3
                exit
            """
        )
        strand_values, _ = _values(kernel)
        webs = _webs_of_reg(strand_values, gpr(3))
        loop_web = next(w for w in webs if w.defs[0].ref is not None
                        and w.defs[0].ref.block_index == 1)
        # `iadd R4, R3, 1` reads the PREVIOUS iteration's R3.
        assert loop_web.reads == [] or all(
            read.mixed for read in loop_web.reads
        )
        assert loop_web.live_out

    def test_in_iteration_use_is_in_web(self):
        kernel = parse_kernel(
            """
            .kernel intra
            .livein R0 R1 R2
            entry:
                mov R9, 0
            loop:
                iadd R3, R2, 1
                iadd R4, R3, 2
                iadd R2, R2, -1
                setp P0, 0, R2
                @P0 bra loop
            done:
                exit
            """
        )
        strand_values, _ = _values(kernel)
        (web,) = _webs_of_reg(strand_values, gpr(3))
        assert len(web.reads) == 1
        assert not web.reads[0].mixed
        assert not web.live_out


class TestReadOperandCandidates:
    def test_coefficient_reads_grouped(self):
        kernel = parse_kernel(
            """
            .kernel coef
            .livein R0 R1
            entry:
                iadd R2, R0, 1
                iadd R3, R0, 2
                iadd R4, R0, 3
                stg [R1], R4
                exit
            """
        )
        strand_values, _ = _values(kernel)
        candidates = [
            c
            for values in strand_values
            for c in values.read_candidates
            if c.reg == gpr(0)
        ]
        assert len(candidates) == 1
        assert len(candidates[0].reads) == 3
        assert len(candidates[0].coverable_reads) == 3

    def test_hammock_arm_reads_not_coverable(self):
        """Reads on a parallel arm are reachable without passing the
        first read: they may not be redirected to the ORF."""
        kernel = parse_kernel(
            """
            .kernel arms
            .livein R0 R1 R2
            entry:
                setp P0, R2, 50
                @P0 bra right
            left:
                iadd R3, R0, 1
                bra merge
            right:
                iadd R3, R0, 2
            merge:
                stg [R1], R3
                exit
            """
        )
        strand_values, _ = _values(kernel)
        candidates = [
            c
            for values in strand_values
            for c in values.read_candidates
            if c.reg == gpr(0)
        ]
        (candidate,) = candidates
        assert len(candidate.reads) == 2
        # Only the first read is coverable; the other arm's read has a
        # path from the strand entry avoiding it.
        assert len(candidate.coverable_reads) == 1

    def test_same_instruction_double_read(self):
        kernel = parse_kernel(
            """
            .kernel dbl
            .livein R0 R1
            entry:
                imul R2, R0, R0
                iadd R3, R0, 1
                stg [R1], R3
                exit
            """
        )
        strand_values, _ = _values(kernel)
        (candidate,) = [
            c
            for values in strand_values
            for c in values.read_candidates
            if c.reg == gpr(0)
        ]
        assert len(candidate.reads) == 3
        # The second slot of the imul shares the first read's position
        # and cannot see the fill; the later iadd read can.
        assert len(candidate.coverable_reads) == 2

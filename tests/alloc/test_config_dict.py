"""AllocationConfig.to_dict / from_dict: round trip and validation."""

import dataclasses

import pytest

from repro.alloc.allocator import AllocationConfig


def test_round_trip_default():
    config = AllocationConfig()
    assert AllocationConfig.from_dict(config.to_dict()) == config


def test_round_trip_every_field_nondefault():
    config = AllocationConfig(
        orf_entries=5,
        use_lrf=True,
        split_lrf=True,
        lrf_banks=2,
        enable_partial_ranges=False,
        enable_read_operands=False,
        allow_forward_branches=False,
        assume_persistent_strands=True,
    )
    d = config.to_dict()
    assert set(d) == {
        f.name for f in dataclasses.fields(AllocationConfig)
    }
    assert AllocationConfig.from_dict(d) == config


def test_partial_dict_fills_defaults():
    config = AllocationConfig.from_dict({"orf_entries": 7})
    assert config.orf_entries == 7
    assert config == AllocationConfig(orf_entries=7)


def test_rejects_non_dict_and_unknown_keys():
    with pytest.raises(ValueError, match="must be an object"):
        AllocationConfig.from_dict([1, 2])
    with pytest.raises(ValueError, match="unknown config field.*bogus"):
        AllocationConfig.from_dict({"bogus": 1})


def test_rejects_wrong_types_naming_the_field():
    with pytest.raises(ValueError, match="orf_entries"):
        AllocationConfig.from_dict({"orf_entries": "three"})
    with pytest.raises(ValueError, match="orf_entries"):
        AllocationConfig.from_dict({"orf_entries": True})
    with pytest.raises(ValueError, match="use_lrf"):
        AllocationConfig.from_dict({"use_lrf": 1})


def test_rejects_out_of_range_values():
    with pytest.raises(ValueError, match="orf_entries"):
        AllocationConfig.from_dict({"orf_entries": 0})
    with pytest.raises(ValueError, match="lrf_banks"):
        AllocationConfig.from_dict(
            {"use_lrf": True, "split_lrf": True, "lrf_banks": 4}
        )


def test_rejects_inconsistent_lrf_combinations():
    with pytest.raises(ValueError, match="lrf_banks"):
        AllocationConfig.from_dict(
            {"use_lrf": True, "split_lrf": False, "lrf_banks": 2}
        )
    with pytest.raises(ValueError, match="split_lrf requires use_lrf"):
        AllocationConfig.from_dict({"use_lrf": False, "split_lrf": True})

"""Wide (64/128-bit) value handling through the full pipeline.

Section 3.2: values wider than 32 bits are stored across multiple
32-bit registers; the compiler allocates multiple ORF entries for them,
and the (single-entry-per-slot) LRF never holds them.
"""

import pytest

from repro.alloc import AllocationConfig, allocate_kernel
from repro.hierarchy.counters import AccessCounters
from repro.ir import parse_kernel
from repro.ir.registers import gpr
from repro.levels import Level
from repro.sim import WarpInput, build_traces
from repro.sim.accounting import SoftwareAccounting, account_trace
from repro.sim.verify import verify_trace

WIDE_ASM = """
.kernel wide
.livein R0 R1
entry:
    mov RD2, R0
    iadd RD3, RD2, 1
    imul RD4, RD3, RD3
    iadd R5, R0, 1
    imul R6, R5, R5
    stg [R1], RD4
    stg [R1], R6
    exit
"""


@pytest.fixture
def wide_kernel():
    return parse_kernel(WIDE_ASM)


class TestWideAllocation:
    def test_wide_value_gets_two_entries(self, wide_kernel):
        result = allocate_kernel(
            wide_kernel, AllocationConfig(orf_entries=4)
        )
        wide = [
            a
            for a in result.web_assignments
            if a.level is Level.ORF and a.web.width_words == 2
        ]
        assert wide
        for assignment in wide:
            assert len(assignment.entries) == 2
            assert len(set(assignment.entries)) == 2

    def test_wide_value_never_in_lrf(self, wide_kernel):
        result = allocate_kernel(
            wide_kernel,
            AllocationConfig(orf_entries=4, use_lrf=True, split_lrf=True),
        )
        for assignment in result.assignments_for_level(Level.LRF):
            assert assignment.web.width_words == 1

    def test_one_entry_orf_cannot_hold_wide(self, wide_kernel):
        result = allocate_kernel(
            wide_kernel, AllocationConfig(orf_entries=1)
        )
        for assignment in result.assignments_for_level(Level.ORF):
            assert assignment.web.width_words == 1

    def test_wide_accesses_count_double(self, wide_kernel):
        wide_kernel.reset_annotations()
        for _, inst in wide_kernel.instructions():
            inst.ensure_default_annotations()
        traces = build_traces(
            wide_kernel, [WarpInput({gpr(0): 3, gpr(1): 100})]
        )
        counters = AccessCounters()
        account_trace(SoftwareAccounting(counters), traces.warp_traces[0])
        narrow_reads = sum(
            len([
                r for _, r in e.instruction.gpr_reads()
                if r.num_words == 1
            ])
            for e in traces.warp_traces[0]
        )
        wide_reads = sum(
            len([
                r for _, r in e.instruction.gpr_reads()
                if r.num_words == 2
            ])
            for e in traces.warp_traces[0]
        )
        assert counters.total_reads() == narrow_reads + 2 * wide_reads

    def test_wide_allocation_verifies(self, wide_kernel):
        result = allocate_kernel(
            wide_kernel, AllocationConfig.best_paper_config()
        )
        traces = build_traces(
            wide_kernel, [WarpInput({gpr(0): 3, gpr(1): 100})]
        )
        for trace in traces.warp_traces:
            verify_trace(wide_kernel, result.partition, trace)

"""Unit tests for the ORF/LRF entry-interval allocator."""

import pytest

from repro.alloc.intervals import EntryFile


class TestSingleEntry:
    def test_disjoint_windows_share(self):
        entries = EntryFile(1)
        entries.allocate(0, 1, 3)
        assert entries.is_available(0, 5, 8)

    def test_overlap_conflicts(self):
        entries = EntryFile(1)
        entries.allocate(0, 1, 5)
        assert not entries.is_available(0, 3, 8)
        assert not entries.is_available(0, 2, 4)
        assert not entries.is_available(0, 0, 2)

    def test_touching_windows_share(self):
        """Phase semantics: A's last read at slot N (read phase) and
        B's definition at slot N (write phase) can share an entry."""
        entries = EntryFile(1)
        entries.allocate(0, 1, 5)
        assert entries.is_available(0, 5, 9)
        entries.allocate(0, 5, 9)

    def test_same_begin_conflicts(self):
        """Two values written in the same slot's write phase collide,
        even when one is a dead (zero-length) window."""
        entries = EntryFile(1)
        entries.allocate(0, 5, 5)
        assert not entries.is_available(0, 5, 9)
        assert not entries.is_available(0, 5, 5)

    def test_dead_window_inside_live_range_conflicts(self):
        entries = EntryFile(1)
        entries.allocate(0, 2, 8)
        assert not entries.is_available(0, 5, 5)

    def test_dead_window_at_end_shares(self):
        entries = EntryFile(1)
        entries.allocate(0, 2, 8)
        assert entries.is_available(0, 8, 8)

    def test_double_allocate_raises(self):
        entries = EntryFile(1)
        entries.allocate(0, 1, 5)
        with pytest.raises(ValueError):
            entries.allocate(0, 2, 4)


class TestMultiEntry:
    def test_find_free_prefers_lowest(self):
        entries = EntryFile(3)
        assert entries.find_free(0, 5) == 0
        entries.allocate(0, 0, 5)
        assert entries.find_free(0, 5) == 1

    def test_find_free_none_when_full(self):
        entries = EntryFile(2)
        entries.allocate(0, 0, 5)
        entries.allocate(1, 0, 5)
        assert entries.find_free(2, 4) is None

    def test_find_free_group_wide_values(self):
        entries = EntryFile(3)
        group = entries.find_free_group(0, 5, 2)
        assert group == [0, 1]
        for entry in group:
            entries.allocate(entry, 0, 5)
        assert entries.find_free_group(2, 4, 2) is None
        assert entries.find_free_group(2, 4, 1) == [2]

    def test_empty_interval_rejected(self):
        entries = EntryFile(1)
        with pytest.raises(ValueError):
            entries.find_free(5, 3)

    def test_zero_entries(self):
        entries = EntryFile(0)
        assert entries.find_free(0, 1) is None

    def test_negative_entries_rejected(self):
        with pytest.raises(ValueError):
            EntryFile(-1)

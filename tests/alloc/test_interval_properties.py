"""Property tests (hypothesis) for EntryFile interval sharing.

The allocator's soundness rests on the interval invariants of
``repro.alloc.intervals``: two values written in the same slot can
never share an entry; a value last read at slot N and a value defined
at slot N *can* (reads precede writes within a slot); a *closed*
read-operand window owns its boundary slots outright (fuzz seed 320);
and group allocation for wide values never hands out the same entry
twice.  ``windows_conflict`` is the single source of truth; these
tests pin ``_Entry``/``EntryFile`` to it and the conflict relation's
own algebra (symmetry, reflexivity-for-closed).
"""

from hypothesis import given, settings, strategies as st

from repro.alloc.intervals import EntryFile, _Entry, windows_conflict

# Layout positions are small non-negative ints; keep the domain tight
# so hypothesis explores collisions rather than sparse misses.
_POS = st.integers(min_value=0, max_value=40)


@st.composite
def _interval(draw):
    begin = draw(_POS)
    end = draw(st.integers(min_value=begin, max_value=begin + 40))
    return begin, end


@st.composite
def _interval_list(draw):
    return draw(st.lists(_interval(), min_size=0, max_size=12))


def _filled(intervals):
    """An _Entry greedily holding every compatible interval."""
    entry = _Entry()
    for begin, end in intervals:
        if entry.available(begin, end):
            entry.allocate(begin, end)
    return entry


@given(_interval(), st.integers(min_value=0, max_value=40))
def test_same_begin_windows_always_conflict(interval, other_span):
    """Two values defined in the same slot both write the entry in that
    slot's write phase — they may never share, whatever their ends."""
    begin, end = interval
    entry = _Entry()
    entry.allocate(begin, end)
    assert not entry.available(begin, begin + other_span)


@given(_interval(), st.integers(min_value=0, max_value=40))
def test_back_to_back_windows_share(interval, tail):
    """A value last read at slot N coexists with a value defined at N:
    reads happen before writes within a slot."""
    begin, end = interval
    entry = _Entry()
    entry.allocate(begin, end)
    if end != begin:  # same-begin is the write/write conflict above
        assert entry.available(end, end + tail)
        entry.allocate(end, end + tail)  # and allocating really works
    # The mirror image: a window ending exactly at this one's begin.
    fresh = _Entry()
    fresh.allocate(begin, end)
    if begin >= 1 and begin - tail != begin:
        earlier = max(0, begin - max(1, tail))
        if earlier != begin:
            assert fresh.available(earlier, begin)


@given(_interval_list(), _interval(), st.booleans())
def test_availability_matches_windows_conflict(intervals, probe, closed):
    """available() gives one verdict per occupied window; the verdict
    must match ``windows_conflict`` exactly."""
    begin, end = probe
    entry = _filled(intervals)
    expected = not any(
        windows_conflict((begin, end, closed), other)
        for other in entry.occupied
    )
    assert entry.available(begin, end, closed=closed) == expected


@given(_interval(), _interval(), st.booleans(), st.booleans())
def test_windows_conflict_is_symmetric(a, b, closed_a, closed_b):
    wa = (a[0], a[1], closed_a)
    wb = (b[0], b[1], closed_b)
    assert windows_conflict(wa, wb) == windows_conflict(wb, wa)


@given(_interval(), st.integers(min_value=0, max_value=40), st.booleans())
def test_closed_window_owns_its_boundaries(interval, tail, other_closed):
    """A closed (read-operand) window conflicts with any window touching
    either endpoint — the seed-320 sharing is rejected in both
    directions, whatever the other window's flavour."""
    begin, end = interval
    entry = _Entry()
    entry.allocate(begin, end, closed=True)
    # Back-to-back at the end slot: rejected (the group's last read
    # still occupies the entry in that slot's read phase).
    assert not entry.available(end, end + tail, closed=other_closed)
    # And at the begin slot, from the left.
    earlier = max(0, begin - tail)
    assert not entry.available(earlier, begin, closed=other_closed)


@given(_interval_list(), _interval(), st.integers(min_value=1, max_value=6))
def test_find_free_group_never_double_books(intervals, probe, count):
    begin, end = probe
    entries = EntryFile(6)
    for index, (b, e) in enumerate(intervals):
        slot = index % entries.num_entries
        if entries.is_available(slot, b, e):
            entries.allocate(slot, b, e)
    group = entries.find_free_group(begin, end, count)
    if group is None:
        free = sum(
            entries.is_available(i, begin, end)
            for i in range(entries.num_entries)
        )
        assert free < count
        return
    assert len(group) == count
    assert len(set(group)) == count  # distinct entries
    for slot in group:
        assert entries.is_available(slot, begin, end)
        entries.allocate(slot, begin, end)  # all simultaneously bookable
    # After booking the group, none of its entries admits a same-begin
    # window again.
    for slot in group:
        assert not entries.is_available(slot, begin, end)


@given(_interval_list(), _interval())
def test_find_free_matches_group_of_one(intervals, probe):
    begin, end = probe
    entries = EntryFile(4)
    for index, (b, e) in enumerate(intervals):
        slot = index % entries.num_entries
        if entries.is_available(slot, b, e):
            entries.allocate(slot, b, e)
    single = entries.find_free(begin, end)
    group = entries.find_free_group(begin, end, 1)
    if single is None:
        assert group is None
    else:
        assert group == [single]
        # find_free is lowest-index-first.
        for slot in range(single):
            assert not entries.is_available(slot, begin, end)

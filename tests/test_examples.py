"""The example scripts must stay runnable (they are documentation)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"

#: Fast examples run in CI-style tests; the heavier design-space and
#: scheduler explorations are exercised via their underlying APIs in
#: the experiment tests instead.
FAST_EXAMPLES = [
    "quickstart.py",
    "custom_kernel.py",
    "compiler_pipeline.py",
]


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_example_runs(name):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip()


def test_quickstart_reports_savings():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert "savings" in result.stdout
    assert "the paper's design" in result.stdout


def test_custom_kernel_verifies():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / "custom_kernel.py")],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert "verified" in result.stdout
    assert "ORF[" in result.stdout

"""Histogram semantics and Prometheus text exposition."""

import math

import pytest

from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS_S,
    Histogram,
    MetricsRegistry,
    PROMETHEUS_CONTENT_TYPE,
    render_prometheus,
)


def test_histogram_buckets_are_inclusive_upper_bounds():
    histogram = Histogram([1.0, 2.0, 5.0])
    for value in (0.5, 1.0, 1.5, 2.0, 4.0, 5.0, 99.0):
        histogram.observe(value)
    # le=1: {0.5, 1.0}; le=2: {1.5, 2.0}; le=5: {4.0, 5.0}; +Inf: {99}.
    assert histogram.bucket_counts == [2, 2, 2, 1]
    assert histogram.cumulative() == [2, 4, 6, 7]
    assert histogram.count == 7
    assert histogram.total == pytest.approx(113.0)


def test_histogram_quantiles():
    histogram = Histogram([0.001, 0.01, 0.1, 1.0])
    for _ in range(90):
        histogram.observe(0.005)
    for _ in range(10):
        histogram.observe(0.05)
    assert histogram.quantile(0.5) == 0.01
    assert histogram.quantile(0.95) == 0.1
    assert histogram.quantile(0.99) == 0.1
    assert Histogram([1.0]).quantile(0.5) == 0.0  # empty
    overflow = Histogram([1.0, 2.0])
    overflow.observe(10.0)
    assert overflow.quantile(0.99) == 2.0  # +Inf bucket clamps to last bound


def test_histogram_validation():
    with pytest.raises(ValueError):
        Histogram([])
    with pytest.raises(ValueError):
        Histogram([1.0, 1.0])
    with pytest.raises(ValueError):
        Histogram([2.0, 1.0])


def test_histogram_round_trip_and_merge():
    first = Histogram([0.1, 1.0])
    first.observe(0.05)
    first.observe(5.0)
    restored = Histogram.from_dict(first.to_dict())
    assert restored.bounds == first.bounds
    assert restored.bucket_counts == first.bucket_counts
    assert restored.count == first.count
    assert restored.total == pytest.approx(first.total)

    second = Histogram([0.1, 1.0])
    second.observe(0.5)
    first.merge(second)
    assert first.bucket_counts == [1, 1, 1]
    assert first.count == 3
    with pytest.raises(ValueError):
        first.merge(Histogram([0.2, 1.0]))
    with pytest.raises(ValueError):
        Histogram.from_dict({"bounds": [1.0], "bucket_counts": [1]})


def test_registry_get_or_create_fixes_bucket_layout():
    registry = MetricsRegistry()
    registry.observe("latency", 0.003)
    registry.count("requests")
    registry.gauge("depth", 2.0)
    first = registry.histogram("latency")
    # Later buckets= arguments do not re-shape an existing histogram.
    again = registry.histogram("latency", buckets=[1.0])
    assert again is first
    assert first.bounds == DEFAULT_LATENCY_BUCKETS_S
    assert first.count == 1


def test_render_prometheus_families_and_format():
    snapshot = {
        "counters": {"jobs_executed": 3},
        "gauges": {"queue_depth": 1.5},
        "stages": {"evaluate": 0.25},
        "histograms": {
            "http_request_seconds": {
                "bounds": [0.1, 1.0],
                "bucket_counts": [2, 1, 1],
                "sum": 1.85,
                "count": 4,
            }
        },
    }
    text = render_prometheus(snapshot)
    assert text.endswith("\n")
    assert "# TYPE repro_jobs_executed_total counter" in text
    assert "repro_jobs_executed_total 3" in text
    assert "# TYPE repro_queue_depth gauge" in text
    assert "repro_queue_depth 1.5" in text
    assert 'repro_stage_seconds_total{stage="evaluate"} 0.25' in text
    # Cumulative buckets plus the canonical +Inf / _sum / _count triple.
    assert 'repro_http_request_seconds_bucket{le="0.1"} 2' in text
    assert 'repro_http_request_seconds_bucket{le="1"} 3' in text
    assert 'repro_http_request_seconds_bucket{le="+Inf"} 4' in text
    assert "repro_http_request_seconds_sum 1.85" in text
    assert "repro_http_request_seconds_count 4" in text
    assert PROMETHEUS_CONTENT_TYPE.startswith("text/plain; version=0.0.4")


def test_render_prometheus_escaping_and_sanitizing():
    snapshot = {
        "counters": {"weird-name.with spaces": 1},
        "gauges": {"nan_gauge": float("nan"), "inf_gauge": float("inf")},
        "stages": {'label"with\\escapes\n': 0.5},
        "histograms": {},
    }
    text = render_prometheus(snapshot)
    assert "repro_weird_name_with_spaces_total 1" in text
    assert "repro_nan_gauge NaN" in text
    assert "repro_inf_gauge +Inf" in text
    assert (
        'repro_stage_seconds_total{stage="label\\"with\\\\escapes\\n"} 0.5'
        in text
    )
    # Every non-comment line parses as `name{labels} value`.
    for line in text.splitlines():
        if line.startswith("#") or not line:
            continue
        name, _, value = line.rpartition(" ")
        assert name
        assert value == "NaN" or not math.isnan(float(value))


def test_render_prometheus_empty_snapshot():
    assert render_prometheus({}) == ""

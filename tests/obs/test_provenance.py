"""Allocation provenance: decision trail recording and `repro explain`."""

from repro.alloc import AllocationConfig, allocate_kernel
from repro.obs.explain import explain_report
from repro.obs.provenance import EVENT_KINDS, ProvenanceRecorder
from repro.workloads import generate_workload

#: The fuzz_320 misread configuration (see tests/sim/test_fuzz_regressions).
FUZZ_320_CONFIG = AllocationConfig(
    orf_entries=1,
    use_lrf=False,
    split_lrf=False,
    allow_forward_branches=True,
)


def test_recorder_captures_decision_trail():
    spec = generate_workload(7, num_warps=1)
    recorder = ProvenanceRecorder()
    allocate_kernel(
        spec.kernel.clone(),
        AllocationConfig.best_paper_config(),
        recorder=recorder,
    )
    assert recorder.events, "allocator recorded no decisions"
    kinds = {event.kind for event in recorder.events}
    assert kinds <= set(EVENT_KINDS)
    assert "place" in kinds or "skip" in kinds
    placed = [e for e in recorder.events if e.kind == "place"]
    for event in placed:
        assert event.target in ("web", "read_operand")
        assert event.level in ("ORF", "LRF")
        assert event.positions
        assert event.reg.startswith(("R", "P"))
    # The per-register / per-position filters slice the same trail.
    if placed:
        sample = placed[0]
        assert sample in recorder.for_reg(sample.reg)
        assert sample in recorder.for_position(sample.positions[0])
    assert len(recorder.to_dicts()) == len(recorder.events)


def test_recorder_does_not_change_allocation_results():
    spec = generate_workload(320, num_warps=1)
    plain = spec.kernel.clone()
    recorded = spec.kernel.clone()
    allocate_kernel(plain, FUZZ_320_CONFIG)
    recorder = ProvenanceRecorder()
    allocate_kernel(recorded, FUZZ_320_CONFIG, recorder=recorder)
    assert recorder.events

    def annotations(kernel):
        return [
            (ref.position, inst.ends_strand, inst.dst_ann, inst.src_anns)
            for ref, inst in kernel.instructions()
        ]

    assert annotations(plain) == annotations(recorded)


def test_explain_report_surfaces_fuzz_320_misread_chain():
    spec = generate_workload(320, num_warps=1)
    report = explain_report(spec.kernel, FUZZ_320_CONFIG, reg="R18")
    # The decision trail must show the overlapping ORF residency that
    # makes @16 read a stale value: the R18 web and the R17 read
    # operand both landing in ORF entry 0.
    assert "@16" in report
    assert "R18" in report
    assert "ORF" in report
    assert "place" in report
    assert "read_operand" in report


def test_explain_report_filters_by_position():
    spec = generate_workload(320, num_warps=1)
    full = explain_report(spec.kernel, FUZZ_320_CONFIG)
    only_16 = explain_report(spec.kernel, FUZZ_320_CONFIG, position=16)
    assert len(only_16) <= len(full)
    assert "@16" in only_16

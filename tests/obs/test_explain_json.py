"""explain_json: schema, parity with the text report, filtering."""

import json

from repro.alloc.allocator import AllocationConfig
from repro.obs.explain import EXPLAIN_SCHEMA, explain_json, explain_report
from repro.workloads.suites import get_workload


def _kernel():
    return get_workload("vectoradd").kernel


def test_document_shape_and_serialisability():
    payload = explain_json(_kernel(), AllocationConfig())
    # Must be pure-JSON (the CLI dumps it verbatim).
    json.dumps(payload)
    assert payload["schema"] == EXPLAIN_SCHEMA
    assert payload["kernel"] == "vectoradd"
    assert payload["config"] == AllocationConfig().to_dict()
    assert payload["filter"] == {"reg": None, "position": None}
    assert payload["strands"], "strand map must not be empty"
    for row in payload["strands"]:
        assert set(row) == {
            "strand",
            "first_position",
            "last_position",
            "instructions",
            "boundary",
        }
    trail = payload["decision_trail"]
    assert trail["kept_events"] == len(trail["events"])
    assert trail["kept_events"] == trail["total_events"]
    assert payload["annotations"]["kernel"] == "vectoradd"


def test_json_matches_text_report_counts():
    kernel = _kernel()
    config = AllocationConfig(use_lrf=True, split_lrf=True)
    payload = explain_json(kernel, config, reg="R2")
    text = explain_report(kernel, config, reg="R2")
    trail = payload["decision_trail"]
    assert (
        f"decision trail (reg=R2): {trail['kept_events']} of "
        f"{trail['total_events']} events"
    ) in text
    # Same strand count in both renderings.
    assert f"strands={len(payload['strands'])}" in text


def test_filters_restrict_events_and_positions():
    kernel = _kernel()
    config = AllocationConfig()
    everything = explain_json(kernel, config)
    filtered = explain_json(kernel, config, reg="R2", position=1)
    assert filtered["filter"] == {"reg": "R2", "position": 1}
    assert (
        filtered["decision_trail"]["kept_events"]
        <= everything["decision_trail"]["kept_events"]
    )
    for event in filtered["decision_trail"]["events"]:
        assert 1 in event["positions"]
    for entry in filtered["annotated_positions"]:
        assert "text" in entry

"""Tracer unit tests: nesting, propagation, and the disabled fast path."""

import json
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

import pytest

from repro.obs.tracer import _NOOP, TRACER, Span, Tracer, traced_call


@pytest.fixture(autouse=True)
def clean_tracer():
    TRACER.reset()
    yield
    TRACER.reset()


def test_disabled_tracer_is_noop():
    tracer = Tracer()
    assert tracer.enabled is False
    cm = tracer.span("anything", key="value")
    assert cm is _NOOP
    with cm as span:
        assert span is None
    assert tracer.spans == []


def test_span_nesting_follows_context():
    tracer = Tracer()
    tracer.configure(enabled=True)
    with tracer.span("outer") as outer:
        with tracer.span("middle") as middle:
            with tracer.span("inner") as inner:
                pass
        with tracer.span("sibling") as sibling:
            pass

    assert [s.name for s in tracer.spans] == [
        "inner", "middle", "sibling", "outer"
    ]
    assert inner.parent_id == middle.span_id
    assert middle.parent_id == outer.span_id
    assert sibling.parent_id == outer.span_id
    assert outer.parent_id is None
    # One trace: the root's span id is everyone's trace id.
    assert {s.trace_id for s in tracer.spans} == {outer.span_id}
    assert all(s.duration_s >= 0.0 for s in tracer.spans)


def test_span_attributes_and_mid_flight_updates():
    tracer = Tracer()
    tracer.configure(enabled=True)
    with tracer.span("request", method="GET") as span:
        span.attributes["status"] = 200
    (finished,) = tracer.spans
    assert finished.attributes == {"method": "GET", "status": 200}


def test_span_roundtrips_through_dict():
    span = Span(
        name="x", trace_id="t", span_id="s", parent_id=None,
        start_s=12.5, duration_s=0.25, attributes={"a": 1},
        pid=7, tid=9,
    )
    assert Span.from_dict(span.to_dict()) == span


def test_jsonl_sink_streams_finished_spans(tmp_path):
    path = tmp_path / "spans.jsonl"
    tracer = Tracer()
    tracer.configure(enabled=True, jsonl_path=str(path))
    with tracer.span("a"):
        with tracer.span("b"):
            pass
    lines = [
        json.loads(line)
        for line in path.read_text().splitlines()
        if line
    ]
    assert [d["name"] for d in lines] == ["b", "a"]
    assert lines[0]["parent_id"] == lines[1]["span_id"]


def test_drain_returns_and_clears():
    tracer = Tracer()
    tracer.configure(enabled=True)
    with tracer.span("only"):
        pass
    drained = tracer.drain()
    assert [s.name for s in drained] == ["only"]
    assert tracer.spans == []


def test_wrap_propagates_context_into_thread_pool():
    tracer = Tracer()
    tracer.configure(enabled=True)

    def work():
        with tracer.span("pool.work"):
            pass
        return "ok"

    with tracer.span("submit") as submit:
        with ThreadPoolExecutor(max_workers=1) as pool:
            # Unwrapped: the pool thread has no inherited context.
            assert pool.submit(work).result() == "ok"
            # Wrapped: spans nest under the submitting span.
            assert pool.submit(tracer.wrap(work)).result() == "ok"

    by_name = {}
    for span in tracer.spans:
        by_name.setdefault(span.name, []).append(span)
    bare, wrapped = by_name["pool.work"]
    assert bare.parent_id is None
    assert wrapped.parent_id == submit.span_id
    assert wrapped.trace_id == submit.trace_id


def test_traced_call_round_trips_carrier_in_process_pool():
    TRACER.configure(enabled=True)
    with TRACER.span("parent") as parent:
        carrier = TRACER.current_carrier()
    assert carrier == {
        "trace_id": parent.trace_id,
        "span_id": parent.span_id,
        "pid": parent.pid,
    }
    try:
        with ProcessPoolExecutor(max_workers=1) as pool:
            wrapped = pool.submit(traced_call, carrier, len, "abcd").result()
    except (OSError, PermissionError) as error:  # pragma: no cover
        pytest.skip(f"process pool unavailable: {error}")
    assert wrapped["result"] == 4
    (span_dict,) = wrapped["spans"]
    assert span_dict["name"] == "len"
    assert span_dict["trace_id"] == parent.trace_id
    assert span_dict["parent_id"] == parent.span_id

    before = len(TRACER.spans)
    TRACER.ingest(wrapped["spans"])
    adopted = TRACER.spans[before]
    assert adopted.name == "len"
    assert adopted.parent_id == parent.span_id


def test_traced_call_in_process_reuses_enabled_tracer():
    # Thread-executor path: the shared tracer is already on, so spans
    # land in the shared buffer and the wrapper carries none.
    TRACER.configure(enabled=True)
    with TRACER.span("parent") as parent:
        carrier = TRACER.current_carrier()
    wrapped = traced_call(carrier, len, "abc")
    assert wrapped == {"result": 3, "spans": []}
    worker = [s for s in TRACER.spans if s.name == "len"]
    assert len(worker) == 1
    assert worker[0].parent_id == parent.span_id


def test_traced_call_result_matches_untraced_call():
    # Disabled-tracer worker: the result is byte-identical to calling
    # the function directly.
    wrapped = traced_call(None, sorted, [3, 1, 2])
    assert wrapped["result"] == sorted([3, 1, 2])
    assert [d["name"] for d in wrapped["spans"]] == ["sorted"]
    # recording() restored the disabled state and kept the buffer clean.
    assert TRACER.enabled is False
    assert TRACER.spans == []

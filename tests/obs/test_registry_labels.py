"""Label handling in the Prometheus renderer: ``merge_labels`` and
shard-labelled histogram exposition (the cluster rollup's format)."""

from repro.obs.registry import (
    Histogram,
    labeled_name,
    merge_labels,
    render_prometheus,
)


def test_merge_labels_folds_into_existing_block():
    assert merge_labels("requests", shard="0") == 'requests{shard="0"}'
    assert (
        merge_labels('requests{op="allocate"}', shard="0")
        == 'requests{op="allocate",shard="0"}'
    )
    assert merge_labels("requests") == "requests"
    assert merge_labels(labeled_name("c", a="1"), b="2") == 'c{a="1",b="2"}'


def test_merge_labels_escapes_values():
    assert merge_labels("c", shard='x"y') == 'c{shard="x\\"y"}'


def test_labeled_histogram_renders_single_label_block():
    histogram = Histogram([0.1, 1.0])
    histogram.observe(0.05)
    histogram.observe(5.0)
    snapshot = {
        "histograms": {
            merge_labels("lat_seconds", shard="1"): histogram.to_dict()
        }
    }
    text = render_prometheus(snapshot)
    assert 'repro_lat_seconds_bucket{shard="1",le="0.1"} 1' in text
    assert 'repro_lat_seconds_bucket{shard="1",le="1"} 1' in text
    assert 'repro_lat_seconds_bucket{shard="1",le="+Inf"} 2' in text
    assert 'repro_lat_seconds_sum{shard="1"}' in text
    assert 'repro_lat_seconds_count{shard="1"} 2' in text
    # Exactly one label block per series — never `}{`.
    assert "}{" not in text


def test_one_help_type_block_per_family_across_shards():
    histogram = Histogram([0.5])
    histogram.observe(0.1)
    snapshot = {
        "counters": {
            merge_labels("http_requests", shard="0"): 3,
            merge_labels("http_requests", shard="1"): 4,
        },
        "histograms": {
            merge_labels("lat_seconds", shard="0"): histogram.to_dict(),
            merge_labels("lat_seconds", shard="1"): histogram.to_dict(),
        },
    }
    text = render_prometheus(snapshot)
    assert text.count("# TYPE repro_http_requests_total counter") == 1
    assert text.count("# TYPE repro_lat_seconds histogram") == 1
    assert 'repro_http_requests_total{shard="0"} 3' in text
    assert 'repro_http_requests_total{shard="1"} 4' in text


def test_unlabeled_histogram_format_unchanged():
    histogram = Histogram([0.1])
    histogram.observe(0.05)
    text = render_prometheus({"histograms": {"lat": histogram.to_dict()}})
    assert 'repro_lat_bucket{le="0.1"} 1' in text
    assert "repro_lat_sum 0.05" in text
    assert "repro_lat_count 1" in text

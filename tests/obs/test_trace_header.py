"""X-Repro-Trace header carrier: round-trip and malformed input."""

import pytest

from repro.obs.tracer import (
    TRACE_HEADER,
    TRACER,
    carrier_from_header,
    carrier_to_header,
)


@pytest.fixture(autouse=True)
def clean_tracer():
    TRACER.reset()
    yield
    TRACER.reset()


def test_header_name_is_lowercase_for_parsed_header_dicts():
    assert TRACE_HEADER == "x-repro-trace"


def test_carrier_round_trips_through_header():
    TRACER.configure(enabled=True)
    with TRACER.span("root"):
        carrier = TRACER.current_carrier()
        header = carrier_to_header(carrier)
        assert carrier_from_header(header) == carrier


def test_malformed_headers_never_raise():
    assert carrier_from_header(None) is None
    assert carrier_from_header("") is None
    assert carrier_from_header("not json") is None
    assert carrier_from_header("[1, 2]") is None
    assert carrier_from_header('{"trace_id": 5, "span_id": "x"}') is None
    assert carrier_from_header('{"trace_id": "t"}') is None


def test_attach_parents_spans_under_header_carrier():
    TRACER.configure(enabled=True)
    header = carrier_to_header(
        {"trace_id": "t1", "span_id": "s1", "pid": 1}
    )
    with TRACER.attach(carrier_from_header(header)):
        with TRACER.span("child"):
            pass
    span = TRACER.drain()[0]
    assert span.trace_id == "t1"
    assert span.parent_id == "s1"

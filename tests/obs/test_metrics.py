"""RunMetrics schema 3: histograms, round-trips, and the summary split."""

import json

from repro.engine.metrics import SCHEMA_VERSION, RunMetrics


def test_schema_3_round_trip(tmp_path):
    metrics = RunMetrics()
    with metrics.stage("evaluate"):
        pass
    metrics.count("record_misses", 2)
    metrics.gauge("service_queue_depth", 1.0)
    metrics.observe("http_request_seconds", 0.004)

    data = metrics.to_dict()
    assert data["schema"] == SCHEMA_VERSION == 3
    restored = RunMetrics.from_dict(data)
    assert restored.to_dict() == data
    assert restored.histograms["http_request_seconds"].count == 1

    path = tmp_path / "metrics.json"
    metrics.write(str(path))
    assert json.loads(path.read_text()) == data


def test_schema_2_documents_rehydrate_without_histograms():
    # A schema-2 document has no "histograms" key; readers must treat
    # the missing key as empty rather than fail.
    legacy = {
        "schema": 2,
        "stages": {"traces": 0.5},
        "counters": {"record_memo_hits": 4},
        "gauges": {"queue_depth": 2.0},
    }
    metrics = RunMetrics.from_dict(legacy)
    assert metrics.histograms == {}
    assert metrics.stages == {"traces": 0.5}
    assert metrics.counters == {"record_memo_hits": 4}
    # And symmetrically: a schema-2 reader that only consumes the old
    # keys sees exactly what it always saw in a schema-3 document.
    data = metrics.to_dict()
    assert {"stages", "counters", "gauges"} <= set(data)


def test_stage_feeds_wall_clock_and_histogram():
    metrics = RunMetrics()
    with metrics.stage("traces"):
        pass
    with metrics.stage("traces"):
        pass
    assert metrics.stages["traces"] >= 0.0
    assert metrics.histograms["stage_traces_seconds"].count == 2


def test_summary_separates_service_counters_from_engine_cache():
    metrics = RunMetrics()
    metrics.count("record_memo_hits", 10)
    metrics.count("record_misses", 2)
    metrics.count("service_memo_hits", 7)
    metrics.count("inflight_dedup_hits", 3)
    metrics.count("service_memo_misses", 1)
    summary = metrics.summary()
    assert "cache_hits=10" in summary
    assert "cache_misses=2" in summary
    assert "service_hits=10" in summary  # 7 memo + 3 in-flight dedup
    assert "service_misses=1" in summary


def test_summary_omits_service_line_when_unused():
    metrics = RunMetrics()
    metrics.count("record_memo_hits")
    summary = metrics.summary()
    assert "cache_hits=1" in summary
    assert "service_hits" not in summary


def test_to_prometheus_exposes_all_families():
    metrics = RunMetrics()
    with metrics.stage("evaluate"):
        pass
    metrics.count("jobs_executed", 2)
    metrics.gauge("service_in_flight", 1.0)
    text = metrics.to_prometheus()
    assert "repro_jobs_executed_total 2" in text
    assert "repro_service_in_flight 1" in text
    assert 'repro_stage_seconds_total{stage="evaluate"}' in text
    assert "# TYPE repro_stage_evaluate_seconds histogram" in text
    assert 'repro_stage_evaluate_seconds_bucket{le="+Inf"} 1' in text

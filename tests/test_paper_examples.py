"""The paper's worked examples, encoded literally as tests.

Each test reconstructs a figure from the paper and checks that this
implementation makes the same decision the text describes:

* Figure 5(a): strand endpoints from a long-latency dependence and from
  backward branches;
* Figure 5(b): the extra uncertainty endpoint when a long-latency event
  may or may not have executed;
* Figure 8(a): partial range allocation for a value read in a burst and
  then much later;
* Figure 8(b): read operand allocation for a value read repeatedly but
  never written;
* Figure 10(a/b/c): the three forward-branch patterns.
"""

import pytest

from repro.alloc import AllocationConfig, allocate_kernel
from repro.ir import parse_kernel
from repro.ir.registers import gpr
from repro.levels import Level
from repro.strands import EndpointKind, partition_strands


def _read_level(kernel, position, slot):
    instruction = kernel.instruction_at(
        next(ref for ref, _ in kernel.instructions()
             if ref.position == position)
    )
    return instruction.src_anns[slot]


def _write_levels(kernel, position):
    instruction = kernel.instruction_at(
        next(ref for ref, _ in kernel.instructions()
             if ref.position == position)
    )
    return instruction.dst_ann.levels


class TestFigure5a:
    """Ld.global R1 ... Read R1 with an intervening loop: strand 1 ends
    at the dependence; backward branches end strands 2 and 3."""

    ASM = """
    .kernel fig5a
    .livein R0 R9
    bb1:
        ldg R1, [R0]
        iadd R2, R0, 1
        iadd R3, R2, 2
    bb2:
        iadd R4, R3, R1
        iadd R5, R4, 1
    bb3:
        iadd R5, R5, -1
        setp P0, 0, R5
        @P0 bra bb3
    bb4:
        iadd R6, R5, 1
        iadd R9, R9, -1
        setp P1, 0, R9
        @P1 bra bb1
    bb5:
        stg [R0], R6
        exit
    """

    def test_strand_count_and_kinds(self):
        kernel = parse_kernel(self.ASM)
        partition = partition_strands(kernel)
        # Strand 1: bb1 (up to the R1 dependence in bb2).
        # Strand 2: bb2 from the dependence (LONG_LATENCY cut).
        # Strand 3: the bb3 loop (backward target).
        # Strand 4: bb4 onward... bb1 is also a backward target, so
        # re-entry starts a new strand there too.
        kinds = set(partition.cut_before.values()) | set(
            partition.entry_cuts.values()
        )
        assert EndpointKind.LONG_LATENCY in kinds
        assert (
            EndpointKind.BACKWARD_TARGET in kinds
            or EndpointKind.UNCERTAINTY in kinds
        )
        # The dependence cut sits exactly at `iadd R4, R3, R1`.
        read_position = next(
            ref.position
            for ref, inst in kernel.instructions()
            if inst.opcode.value == "iadd"
            and any(r == gpr(1) for _, r in inst.gpr_reads())
        )
        assert (
            partition.cut_before.get(read_position)
            is EndpointKind.LONG_LATENCY
        )

    def test_values_do_not_cross_backward_branches(self):
        kernel = parse_kernel(self.ASM)
        result = allocate_kernel(kernel, AllocationConfig(orf_entries=8))
        # R6 is produced in bb4 and consumed in bb5 across no backward
        # branch: allocation is allowed.  R3 is produced in strand 1 and
        # consumed in strand 2 (after the dependence cut): it must flow
        # through the MRF.
        for assignment in result.web_assignments:
            for read in assignment.covered_reads:
                assert result.partition.same_strand(
                    assignment.web.defs[0].ref, read.site.ref
                )


class TestFigure5b:
    """A long-latency load on one side of a hammock: the merge point
    needs an uncertainty endpoint so the compiler knows when the warp
    will be descheduled."""

    ASM = """
    .kernel fig5b
    .livein R0 R2
    bb1:
        setp P0, R2, 10
        @P0 bra bb3
    bb2:
        ldg R1, [R0]
        iadd R4, R2, 1
        bra bb4
    bb3:
        iadd R1, R2, 5
        iadd R4, R2, 2
    bb4:
        iadd R5, R4, 1
        iadd R6, R1, R5
        stg [R0], R6
        exit
    """

    def test_uncertainty_endpoint_at_merge(self):
        kernel = parse_kernel(self.ASM)
        partition = partition_strands(kernel)
        bb4 = kernel.block_index("bb4")
        assert partition.entry_cuts.get(bb4) is EndpointKind.UNCERTAINTY
        assert bb4 in partition.wait_blocks

    def test_no_orf_communication_into_merge(self):
        kernel = parse_kernel(self.ASM)
        result = allocate_kernel(kernel, AllocationConfig(orf_entries=8))
        # R4 is written on both arms but the merge begins a new strand:
        # its merge-point read must come from the MRF.
        bb4 = kernel.block_index("bb4")
        first_bb4 = next(
            ref.position
            for ref, _ in kernel.instructions()
            if ref.block_index == bb4
        )
        annotation = _read_level(kernel, first_bb4, 0)
        assert annotation.level is Level.MRF


class TestFigure8a:
    """R1 produced, read in a burst, then read much later: partial
    range allocation serves the burst from the ORF and the late read
    from the MRF."""

    def _kernel(self):
        lines = [
            ".kernel fig8a",
            ".livein R0 R9",
            "entry:",
            "    iadd R1, R0, 3",     # produce R1
            "    iadd R3, R1, 3",     # burst read 1
            "    iadd R4, R1, 3",     # burst read 2
        ]
        # Many independent instructions crowd the ORF.
        for index in range(10):
            lines.append(f"    iadd R{10 + index}, R0, {index}")
            lines.append(f"    stg [R9], R{10 + index}")
        lines.append("    iadd R5, R1, 3")   # much later read
        lines.append("    stg [R9], R5")
        lines.append("    stg [R9], R3")
        lines.append("    stg [R9], R4")
        lines.append("    exit")
        return parse_kernel("\n".join(lines))

    def test_partial_range_allocated(self):
        kernel = self._kernel()
        result = allocate_kernel(
            kernel,
            AllocationConfig(orf_entries=1, enable_read_operands=False),
        )
        r1_assignments = [
            a for a in result.web_assignments if a.web.reg == gpr(1)
        ]
        if not r1_assignments:
            pytest.skip("R1 lost the priority race in this configuration")
        (assignment,) = r1_assignments
        # The burst is covered; the late read is not.
        assert assignment.partial
        assert len(assignment.covered_reads) < len(
            assignment.web.coverable_reads
        )
        # The value is written to both ORF and MRF (late read needs it).
        assert Level.MRF in _write_levels(kernel, 0)
        assert Level.ORF in _write_levels(kernel, 0)


class TestFigure8b:
    """R0 read eight times but never written: read operand allocation
    caches it in the ORF after the first MRF read."""

    ASM = """
    .kernel fig8b
    .livein R0 R9
    entry:
        iadd R1, R0, 3
        iadd R2, R0, 3
        iadd R3, R0, 3
        iadd R4, R0, 3
        iadd R5, R0, 3
        iadd R6, R0, 3
        iadd R7, R0, 3
        iadd R8, R0, 3
        stg [R9], R8
        exit
    """

    def test_read_operand_allocation(self):
        kernel = parse_kernel(self.ASM)
        result = allocate_kernel(kernel, AllocationConfig(orf_entries=3))
        (assignment,) = [
            a for a in result.read_assignments
            if a.candidate.reg == gpr(0)
        ]
        assert len(assignment.covered_reads) == 8
        # First read: MRF plus ORF fill; the remaining seven hit the ORF.
        first = _read_level(kernel, 0, 0)
        assert first.level is Level.MRF
        assert first.orf_write_entry is not None
        for position in range(1, 8):
            assert _read_level(kernel, position, 0).level is Level.ORF


class TestFigure10:
    """The three forward-branch patterns, with R1 arriving from a
    previous strand in the MRF."""

    def _allocate(self, body):
        kernel = parse_kernel(body)
        result = allocate_kernel(kernel, AllocationConfig(orf_entries=4))
        return kernel, result

    def test_10a_one_sided_write_reads_mrf(self):
        """R1 written in BB7 only: BB9's read must encode the MRF."""
        kernel, _ = self._allocate(
            """
            .kernel fig10a
            .livein R0 R1
            bb6:
                setp P0, R0, 10
                @P0 bra bb8
            bb7:
                iadd R1, R0, 1
            bb8:
                iadd R3, R0, 2
            bb9:
                iadd R4, R1, R3
                stg [R0], R4
                exit
            """
        )
        bb9_first = next(
            ref.position for ref, _ in kernel.instructions()
            if ref.block_index == kernel.block_index("bb9")
        )
        assert _read_level(kernel, bb9_first, 0).level is Level.MRF

    def test_10b_extra_read_can_use_orf(self):
        """R1 written and also read inside BB7: the BB7 read may hit
        the ORF while BB9 still reads the MRF."""
        kernel, _ = self._allocate(
            """
            .kernel fig10b
            .livein R0 R1
            bb6:
                setp P0, R0, 10
                @P0 bra bb8
            bb7:
                iadd R1, R0, 1
                iadd R5, R1, 2
                stg [R0], R5
            bb8:
                iadd R3, R0, 2
            bb9:
                iadd R4, R1, R3
                stg [R0], R4
                exit
            """
        )
        bb7 = kernel.block_index("bb7")
        bb7_read = next(
            ref.position for ref, inst in kernel.instructions()
            if ref.block_index == bb7
            and any(r == gpr(1) for _, r in inst.gpr_reads())
        )
        bb9_first = next(
            ref.position for ref, _ in kernel.instructions()
            if ref.block_index == kernel.block_index("bb9")
        )
        assert _read_level(kernel, bb7_read, 0).level is Level.ORF
        assert _read_level(kernel, bb9_first, 0).level is Level.MRF
        # The BB7 write reaches both the ORF and the MRF.
        bb7_write = bb7_read - 1
        assert set(_write_levels(kernel, bb7_write)) == {
            Level.ORF, Level.MRF,
        }

    def test_10c_both_sides_share_one_entry(self):
        """R1 written on both sides: the merge read is serviced by the
        ORF and (R1 being dead afterwards) no MRF access remains."""
        kernel, result = self._allocate(
            """
            .kernel fig10c
            .livein R0
            bb6:
                setp P0, R0, 10
                @P0 bra bb8
            bb7:
                iadd R1, R0, 1
                bra bb9
            bb8:
                iadd R1, R0, 2
            bb9:
                iadd R4, R1, 3
                stg [R0], R4
                exit
            """
        )
        web_assignment = next(
            a for a in result.web_assignments if a.web.reg == gpr(1)
        )
        assert len(web_assignment.web.defs) == 2
        assert web_assignment.level is Level.ORF
        # Both writes target the same entry; the merge read uses it;
        # no MRF write remains (paper: "eliminating all MRF accesses").
        for definition in web_assignment.web.defs:
            levels = _write_levels(kernel, definition.ref.position)
            assert levels == (Level.ORF,)
        bb9_first = next(
            ref.position for ref, _ in kernel.instructions()
            if ref.block_index == kernel.block_index("bb9")
        )
        annotation = _read_level(kernel, bb9_first, 0)
        assert annotation.level is Level.ORF
        assert annotation.orf_entry == web_assignment.entries[0]

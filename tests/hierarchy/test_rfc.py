"""Unit tests for the hardware register file cache (prior-work
baseline, Section 2.2)."""

import pytest

from repro.hierarchy.counters import AccessCounters
from repro.hierarchy.rfc import RegisterFileCache
from repro.ir.registers import gpr
from repro.levels import Level

LIVE_ALL = frozenset(gpr(i) for i in range(16))
DEAD_ALL = frozenset()


def _rfc(entries=2, flush_on_backward_branch=False):
    counters = AccessCounters()
    cache = RegisterFileCache(
        entries, counters,
        flush_on_backward_branch=flush_on_backward_branch,
    )
    return cache, counters


class TestReadPath:
    def test_miss_goes_to_mrf(self):
        cache, counters = _rfc()
        assert cache.read(gpr(1), False) is Level.MRF
        assert counters.reads(Level.MRF) == 1

    def test_hit_after_write(self):
        cache, counters = _rfc()
        cache.write(gpr(1), False, False, LIVE_ALL)
        assert cache.read(gpr(1), False) is Level.ORF
        assert counters.reads(Level.ORF) == 1
        assert counters.reads(Level.MRF) == 0

    def test_wide_register_counts_words(self):
        cache, counters = _rfc()
        cache.write(gpr(1, 64), False, False, LIVE_ALL)
        cache.read(gpr(1, 64), False)
        assert counters.reads(Level.ORF) == 2
        assert counters.writes(Level.ORF) == 2


class TestWritePath:
    def test_long_latency_bypasses_rfc(self):
        cache, counters = _rfc()
        level = cache.write(gpr(1), True, True, LIVE_ALL)
        assert level is Level.MRF
        assert gpr(1) not in cache.resident_registers

    def test_fifo_eviction_order(self):
        cache, _ = _rfc(entries=2)
        cache.write(gpr(1), False, False, DEAD_ALL)
        cache.write(gpr(2), False, False, DEAD_ALL)
        cache.write(gpr(3), False, False, DEAD_ALL)
        assert cache.resident_registers == {gpr(2), gpr(3)}

    def test_live_eviction_writes_back(self):
        cache, counters = _rfc(entries=1)
        cache.write(gpr(1), False, False, LIVE_ALL)
        cache.write(gpr(2), False, False, LIVE_ALL)
        # Eviction of live gpr(1): RFC read + MRF write.
        assert counters.reads(Level.ORF) == 1
        assert counters.writes(Level.MRF) == 1

    def test_dead_eviction_elided(self):
        cache, counters = _rfc(entries=1)
        cache.write(gpr(1), False, False, DEAD_ALL)
        cache.write(gpr(2), False, False, DEAD_ALL)
        assert counters.reads(Level.ORF) == 0
        assert counters.writes(Level.MRF) == 0

    def test_overwrite_in_place_no_eviction(self):
        cache, counters = _rfc(entries=1)
        cache.write(gpr(1), False, False, LIVE_ALL)
        cache.write(gpr(1), False, False, LIVE_ALL)
        assert counters.writes(Level.MRF) == 0
        assert counters.writes(Level.ORF) == 2


class TestFlush:
    def test_deschedule_flushes_live_values(self):
        cache, counters = _rfc(entries=4)
        cache.write(gpr(1), False, False, LIVE_ALL)
        cache.write(gpr(2), False, False, LIVE_ALL)
        cache.on_deschedule(LIVE_ALL)
        assert cache.resident_registers == frozenset()
        assert counters.writes(Level.MRF) == 2
        assert counters.reads(Level.ORF) == 2

    def test_deschedule_elides_dead_values(self):
        cache, counters = _rfc(entries=4)
        cache.write(gpr(1), False, False, LIVE_ALL)
        cache.write(gpr(2), False, False, LIVE_ALL)
        cache.on_deschedule(frozenset({gpr(1)}))
        assert counters.writes(Level.MRF) == 1

    def test_backward_branch_flush_configurable(self):
        cache, counters = _rfc(entries=4, flush_on_backward_branch=True)
        cache.write(gpr(1), False, False, LIVE_ALL)
        cache.on_backward_branch(LIVE_ALL)
        assert cache.resident_registers == frozenset()

        cache2, _ = _rfc(entries=4, flush_on_backward_branch=False)
        cache2.write(gpr(1), False, False, LIVE_ALL)
        cache2.on_backward_branch(LIVE_ALL)
        assert cache2.resident_registers == {gpr(1)}

    def test_finish_drops_without_writeback(self):
        cache, counters = _rfc(entries=4)
        cache.write(gpr(1), False, False, LIVE_ALL)
        cache.finish()
        assert cache.resident_registers == frozenset()
        assert counters.writes(Level.MRF) == 0


class TestValidation:
    def test_zero_entries_rejected(self):
        with pytest.raises(ValueError):
            RegisterFileCache(0, AccessCounters())

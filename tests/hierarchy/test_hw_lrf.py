"""Unit tests for the hardware three-level model (LRF + RFC + MRF)."""

import pytest

from repro.hierarchy.counters import AccessCounters
from repro.hierarchy.hw_lrf import HardwareThreeLevel
from repro.ir.registers import gpr
from repro.levels import Level

LIVE_ALL = frozenset(gpr(i) for i in range(16))
DEAD_ALL = frozenset()


def _model(rfc=2, shared_positions=frozenset()):
    counters = AccessCounters()
    model = HardwareThreeLevel(
        rfc, counters, frozenset(shared_positions)
    )
    return model, counters


class TestWriteChain:
    def test_result_lands_in_lrf(self):
        model, counters = _model()
        assert model.write(gpr(1), False, False, LIVE_ALL, 0) is Level.LRF
        assert counters.writes(Level.LRF) == 1

    def test_lrf_eviction_moves_to_rfc(self):
        model, counters = _model()
        model.write(gpr(1), False, False, LIVE_ALL, 0)
        model.write(gpr(2), False, False, LIVE_ALL, 1)
        # gpr(1) evicted from the 1-entry LRF into the RFC.
        assert counters.reads(Level.LRF) == 1
        assert counters.writes(Level.ORF) == 1
        assert model.read(gpr(1), False) is Level.ORF

    def test_dead_lrf_eviction_dropped(self):
        model, counters = _model()
        model.write(gpr(1), False, False, DEAD_ALL, 0)
        model.write(gpr(2), False, False, DEAD_ALL, 1)
        assert counters.writes(Level.ORF) == 0
        assert model.read(gpr(1), False) is Level.MRF

    def test_rfc_eviction_reaches_mrf(self):
        model, counters = _model(rfc=1)
        model.write(gpr(1), False, False, LIVE_ALL, 0)
        model.write(gpr(2), False, False, LIVE_ALL, 1)  # 1 -> RFC
        model.write(gpr(3), False, False, LIVE_ALL, 2)  # 2 -> RFC, 1 -> MRF
        assert counters.writes(Level.MRF) == 1

    def test_long_latency_bypasses_everything(self):
        model, counters = _model()
        assert model.write(gpr(1), True, True, LIVE_ALL, 0) is Level.MRF
        assert model.resident_registers == frozenset()

    def test_shared_consumed_value_skips_lrf(self):
        model, counters = _model(shared_positions={5})
        assert model.write(gpr(1), False, False, LIVE_ALL, 5) is Level.ORF
        assert model.read(gpr(1), False) is Level.ORF

    def test_shared_produced_value_skips_lrf(self):
        model, _ = _model()
        # An SFU result (shared producer) cannot be written to the LRF.
        assert model.write(gpr(1), True, False, LIVE_ALL, 0) is Level.ORF


class TestReadChain:
    def test_lrf_hit_only_for_private(self):
        model, _ = _model()
        model.write(gpr(1), False, False, LIVE_ALL, 0)
        assert model.read(gpr(1), False) is Level.LRF
        # The shared datapath cannot see the LRF.
        assert model.read(gpr(1), True) is Level.MRF

    def test_miss_falls_to_mrf(self):
        model, counters = _model()
        assert model.read(gpr(9), False) is Level.MRF


class TestFlush:
    def test_deschedule_flushes_both_levels(self):
        model, counters = _model(rfc=4)
        model.write(gpr(1), False, False, LIVE_ALL, 0)
        model.write(gpr(2), False, False, LIVE_ALL, 1)
        model.on_deschedule(LIVE_ALL)
        assert model.resident_registers == frozenset()
        assert counters.writes(Level.MRF) == 2

    def test_finish_drops_silently(self):
        model, counters = _model()
        model.write(gpr(1), False, False, LIVE_ALL, 0)
        model.finish()
        assert counters.writes(Level.MRF) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            HardwareThreeLevel(0, AccessCounters(), frozenset())
        with pytest.raises(ValueError):
            HardwareThreeLevel(
                2, AccessCounters(), frozenset(), lrf_entries=0
            )

"""Property tests: the hardware cache models against reference FIFOs.

A simple reference implementation (plain ordered dict with explicit
FIFO eviction) replays random operation sequences; the production
models must serve every read from the same level the reference
predicts, and never exceed capacity.
"""

from collections import OrderedDict

from hypothesis import given, settings, strategies as st

from repro.hierarchy.counters import AccessCounters
from repro.hierarchy.hw_lrf import HardwareThreeLevel
from repro.hierarchy.rfc import RegisterFileCache
from repro.ir.registers import gpr
from repro.levels import Level

LIVE_ALL = frozenset(gpr(i) for i in range(8))

#: op = ("read" | "write" | "write_ll" | "flush", reg index)
_OPS = st.lists(
    st.tuples(
        st.sampled_from(["read", "write", "write_ll", "flush"]),
        st.integers(min_value=0, max_value=7),
    ),
    max_size=60,
)


@settings(max_examples=80, deadline=None)
@given(ops=_OPS, capacity=st.integers(min_value=1, max_value=4))
def test_rfc_matches_reference_fifo(ops, capacity):
    counters = AccessCounters()
    cache = RegisterFileCache(capacity, counters)
    reference: "OrderedDict" = OrderedDict()

    for op, index in ops:
        reg = gpr(index)
        if op == "read":
            expected = Level.ORF if reg in reference else Level.MRF
            assert cache.read(reg, False) is expected
        elif op == "write":
            level = cache.write(reg, False, False, LIVE_ALL)
            assert level is Level.ORF
            if reg not in reference:
                while len(reference) >= capacity:
                    reference.popitem(last=False)
                reference[reg] = None
        elif op == "write_ll":
            level = cache.write(reg, False, True, LIVE_ALL)
            assert level is Level.MRF
            reference.pop(reg, None)
        else:
            cache.on_deschedule(LIVE_ALL)
            reference.clear()
        assert cache.resident_registers == frozenset(reference)
        assert len(cache.resident_registers) <= capacity


@settings(max_examples=80, deadline=None)
@given(ops=_OPS, capacity=st.integers(min_value=1, max_value=3))
def test_hw_three_level_matches_reference(ops, capacity):
    counters = AccessCounters()
    model = HardwareThreeLevel(capacity, counters, frozenset())
    lrf: "OrderedDict" = OrderedDict()
    rfc: "OrderedDict" = OrderedDict()

    def evict_lrf():
        reg, _ = lrf.popitem(last=False)
        # Live eviction moves into the RFC.
        rfc.pop(reg, None)
        while len(rfc) >= capacity:
            rfc.popitem(last=False)
        rfc[reg] = None

    for op, index in ops:
        reg = gpr(index)
        if op == "read":
            if reg in lrf:
                expected = Level.LRF
            elif reg in rfc:
                expected = Level.ORF
            else:
                expected = Level.MRF
            assert model.read(reg, False) is expected
        elif op == "write":
            model.write(reg, False, False, LIVE_ALL, 0)
            rfc.pop(reg, None)
            if reg not in lrf:
                while len(lrf) >= 1:
                    evict_lrf()
                lrf[reg] = None
        elif op == "write_ll":
            model.write(reg, False, True, LIVE_ALL, 0)
            lrf.pop(reg, None)
            rfc.pop(reg, None)
        else:
            model.on_deschedule(LIVE_ALL)
            lrf.clear()
            rfc.clear()
        assert model.resident_registers == (
            frozenset(lrf) | frozenset(rfc)
        )


@settings(max_examples=60, deadline=None)
@given(ops=_OPS)
def test_rfc_read_conservation(ops):
    """Every read is serviced by exactly one level: ORF + MRF read
    counts equal the number of read operations (plus write-backs,
    which only add ORF reads paired with MRF writes)."""
    counters = AccessCounters()
    cache = RegisterFileCache(2, counters)
    reads_issued = 0
    long_latency_writes = 0
    for op, index in ops:
        reg = gpr(index)
        if op == "read":
            cache.read(reg, False)
            reads_issued += 1
        elif op == "write":
            cache.write(reg, False, False, LIVE_ALL)
        elif op == "write_ll":
            cache.write(reg, False, True, LIVE_ALL)
            long_latency_writes += 1
        else:
            cache.on_deschedule(LIVE_ALL)
    # MRF writes = long-latency results (direct) + write-backs; each
    # write-back also reads the RFC once.
    writeback_reads = counters.writes(Level.MRF) - long_latency_writes
    assert counters.total_reads() == reads_issued + writeback_reads

"""Unit tests for access counters."""

from repro.hierarchy.counters import AccessCounters
from repro.levels import Level


class TestAccessCounters:
    def test_reads_and_writes_separate(self):
        counters = AccessCounters()
        counters.add_read(Level.MRF)
        counters.add_write(Level.MRF)
        counters.add_read(Level.ORF, count=3)
        assert counters.reads(Level.MRF) == 1
        assert counters.writes(Level.MRF) == 1
        assert counters.reads(Level.ORF) == 3
        assert counters.writes(Level.ORF) == 0

    def test_shared_flag_tracked_separately(self):
        counters = AccessCounters()
        counters.add_read(Level.ORF, shared_unit=False)
        counters.add_read(Level.ORF, shared_unit=True)
        assert counters.reads(Level.ORF) == 2
        assert counters.counts[(Level.ORF, True, True)] == 1
        assert counters.counts[(Level.ORF, True, False)] == 1

    def test_totals(self):
        counters = AccessCounters()
        counters.add_read(Level.MRF, count=2)
        counters.add_read(Level.LRF, count=3)
        counters.add_write(Level.ORF, count=4)
        assert counters.total_reads() == 5
        assert counters.total_writes() == 4

    def test_merge(self):
        a = AccessCounters()
        a.add_read(Level.MRF, count=2)
        b = AccessCounters()
        b.add_read(Level.MRF, count=3)
        b.add_write(Level.LRF)
        a.merge(b)
        assert a.reads(Level.MRF) == 5
        assert a.writes(Level.LRF) == 1

    def test_scaled(self):
        counters = AccessCounters()
        counters.add_read(Level.MRF, count=4)
        scaled = counters.scaled(0.5)
        assert scaled.reads(Level.MRF) == 2
        assert counters.reads(Level.MRF) == 4  # original untouched

    def test_breakdowns(self):
        counters = AccessCounters()
        counters.add_read(Level.LRF, count=1)
        counters.add_read(Level.ORF, count=2)
        counters.add_read(Level.MRF, count=3)
        breakdown = counters.read_breakdown()
        assert breakdown[Level.LRF] == 1
        assert breakdown[Level.ORF] == 2
        assert breakdown[Level.MRF] == 3

    def test_copy_is_independent(self):
        counters = AccessCounters()
        counters.add_read(Level.MRF)
        copy = counters.copy()
        copy.add_read(Level.MRF)
        assert counters.reads(Level.MRF) == 1
        assert copy.reads(Level.MRF) == 2

"""Compiled trace layer: differential equivalence against the scalar
oracle, columnar compilation, dedup, histogram, and cache behaviour."""

import pytest

from repro.engine.hashing import traceset_fingerprint
from repro.hierarchy.counters import AccessCounters
from repro.ir import parse_kernel
from repro.ir.registers import gpr
from repro.levels import Level
from repro.sim import (
    DivergentWarpInput,
    Scheme,
    SchemeKind,
    WarpInput,
    build_divergent_traces,
    build_traces,
    evaluate_traces,
    usage_histogram,
)
from repro.sim.compiled import (
    baseline_counters,
    compile_traces,
    compiled_enabled,
    hardware_counters,
    kernel_analyses,
    merge_scaled,
    operand_table,
    software_counters,
)
from repro.sim.runner import evaluate_traces_batch
from repro.workloads import all_workloads

#: Every scheme kind the paper evaluates, including the Section 7
#: backward-branch-flush hardware variant.
ALL_KIND_SCHEMES = [
    Scheme(SchemeKind.BASELINE),
    Scheme(SchemeKind.SW_TWO_LEVEL, 3),
    Scheme(SchemeKind.SW_THREE_LEVEL, 3),
    Scheme(SchemeKind.SW_THREE_LEVEL, 3, split_lrf=True),
    Scheme(SchemeKind.HW_TWO_LEVEL, 3),
    Scheme(SchemeKind.HW_THREE_LEVEL, 3),
    Scheme(SchemeKind.HW_TWO_LEVEL, 3, flush_on_backward_branch=True),
]

#: The 12 hardware schemes of the bench harness (Figure 11/12 sweep):
#: every entry size under both hardware kinds.
HW_SWEEP_SCHEMES = [
    Scheme(kind, entries)
    for entries in (1, 2, 3, 4, 6, 8)
    for kind in (SchemeKind.HW_TWO_LEVEL, SchemeKind.HW_THREE_LEVEL)
]

#: A kernel with a guard-squashed non-branch write: @P0 iadd executes
#: with a failing guard for some inputs (reads counted, write squashed).
GUARDED_ASM = """
.kernel guarded
.livein R0 R1
entry:
    ldg R3, [R0]
    setp P0, R3, 50
    @P0 iadd R4, R3, 1
    @!P0 iadd R4, R3, 2
    imul R5, R4, R4
    stg [R1], R5
    exit
"""

DIVERGENT_ASM = """
.kernel hammock
.livein R0 R1
entry:
    ldg R3, [R0]
    setp P0, R3, 100
    @P0 bra small
big:
    imul R6, R3, 3
    bra merge
small:
    iadd R6, R3, 7
merge:
    stg [R1], R6
    exit
"""


def _assert_paths_agree(traces, schemes=ALL_KIND_SCHEMES):
    for scheme in schemes:
        scalar = evaluate_traces(traces, scheme, use_compiled=False)
        compiled = evaluate_traces(traces, scheme, use_compiled=True)
        assert compiled.counters == scalar.counters, scheme.name
        assert compiled.baseline == scalar.baseline, scheme.name
        assert (
            compiled.dynamic_instructions == scalar.dynamic_instructions
        )


class TestDifferentialEquivalence:
    """The acceptance bar: compiled accounting == scalar oracle."""

    @pytest.mark.parametrize(
        "spec",
        all_workloads(0.5),
        ids=lambda spec: spec.name,
    )
    def test_full_suite_all_scheme_kinds(self, spec):
        traces = build_traces(spec.kernel, spec.warp_inputs)
        _assert_paths_agree(traces)

    def test_guard_squashed_writes(self):
        from repro.sim import Memory

        kernel = parse_kernel(GUARDED_ASM)
        memory = Memory(global_mem={0: 10, 64: 200})
        traces = build_traces(
            kernel,
            [
                WarpInput({gpr(0): base, gpr(1): 900}, memory=memory)
                for base in (0, 64)
            ],
        )
        # Both guard outcomes appear in the trace set.
        compiled = compile_traces(traces)
        guards = {guard for (_, guard, _), _ in compiled.histogram.items()}
        assert guards == {True, False}
        _assert_paths_agree(traces)

    def test_divergent_traces(self):
        kernel = parse_kernel(DIVERGENT_ASM)
        warp_inputs = [
            DivergentWarpInput(
                [
                    {gpr(0): 10 * t + 3 * w, gpr(1): 900 + t}
                    for t in range(8)
                ]
            )
            for w in range(3)
        ]
        traces = build_divergent_traces(kernel, warp_inputs)
        _assert_paths_agree(traces)

    def test_entry_sweep_software(self, loop_kernel, loop_inputs):
        traces = build_traces(loop_kernel, loop_inputs)
        schemes = [
            Scheme(kind, entries, split_lrf=split)
            for entries in (1, 2, 4, 8)
            for kind, split in (
                (SchemeKind.SW_TWO_LEVEL, False),
                (SchemeKind.SW_THREE_LEVEL, True),
            )
        ]
        _assert_paths_agree(traces, schemes)


class TestBatchedHardware:
    """The one-pass hardware walk: 12 schemes, exact counter equality."""

    @pytest.mark.parametrize(
        "scheme", HW_SWEEP_SCHEMES, ids=lambda s: s.name
    )
    def test_sweep_matches_scalar_oracle(self, scheme):
        """Every hardware scheme of the sweep, batched in one pass,
        equals the scalar oracle exactly — per counter key."""
        for spec in all_workloads(0.4):
            traces = build_traces(spec.kernel, spec.warp_inputs)
            batched = hardware_counters(
                compile_traces(traces), HW_SWEEP_SCHEMES
            )
            scalar = evaluate_traces(traces, scheme, use_compiled=False)
            assert batched[scheme] == scalar.counters, spec.name

    def test_sweep_on_divergent_traces(self):
        kernel = parse_kernel(DIVERGENT_ASM)
        warp_inputs = [
            DivergentWarpInput(
                [
                    {gpr(0): 10 * t + 3 * w, gpr(1): 900 + t}
                    for t in range(8)
                ]
            )
            for w in range(3)
        ]
        traces = build_divergent_traces(kernel, warp_inputs)
        batched = hardware_counters(
            compile_traces(traces), HW_SWEEP_SCHEMES
        )
        for scheme in HW_SWEEP_SCHEMES:
            scalar = evaluate_traces(traces, scheme, use_compiled=False)
            assert batched[scheme] == scalar.counters, scheme.name

    def test_sweep_on_guard_squashed_traces(self):
        from repro.sim import Memory

        kernel = parse_kernel(GUARDED_ASM)
        memory = Memory(global_mem={0: 10, 64: 200})
        traces = build_traces(
            kernel,
            [
                WarpInput({gpr(0): base, gpr(1): 900}, memory=memory)
                for base in (0, 64)
            ],
        )
        batched = hardware_counters(
            compile_traces(traces), HW_SWEEP_SCHEMES
        )
        for scheme in HW_SWEEP_SCHEMES:
            scalar = evaluate_traces(traces, scheme, use_compiled=False)
            assert batched[scheme] == scalar.counters, scheme.name

    def test_backward_flush_variant(self, loop_kernel, loop_inputs):
        """flush_on_backward_branch is honoured by the columnar walks."""
        traces = build_traces(loop_kernel, loop_inputs)
        schemes = [
            Scheme(kind, 3, flush_on_backward_branch=flush)
            for kind in (SchemeKind.HW_TWO_LEVEL, SchemeKind.HW_THREE_LEVEL)
            for flush in (False, True)
        ]
        batched = hardware_counters(compile_traces(traces), schemes)
        for scheme in schemes:
            scalar = evaluate_traces(traces, scheme, use_compiled=False)
            assert batched[scheme] == scalar.counters, scheme.name

    def test_batch_agrees_with_single(self, loop_kernel, loop_inputs):
        """evaluate_traces_batch == [evaluate_traces] for a mixed list."""
        traces = build_traces(loop_kernel, loop_inputs)
        schemes = ALL_KIND_SCHEMES
        batch = evaluate_traces_batch(traces, schemes)
        singles = [evaluate_traces(traces, s) for s in schemes]
        for batched, single in zip(batch, singles):
            assert batched.scheme == single.scheme
            assert batched.counters == single.counters, single.scheme.name
            assert batched.baseline == single.baseline
            assert (
                batched.dynamic_instructions
                == single.dynamic_instructions
            )

    def test_batch_scalar_fallback(self, loop_kernel, loop_inputs):
        traces = build_traces(loop_kernel, loop_inputs)
        compiled = evaluate_traces_batch(
            traces, HW_SWEEP_SCHEMES, use_compiled=True
        )
        scalar = evaluate_traces_batch(
            traces, HW_SWEEP_SCHEMES, use_compiled=False
        )
        for a, b in zip(compiled, scalar):
            assert a.counters == b.counters, a.scheme.name

    def test_rejects_non_hardware_schemes(self, loop_kernel, loop_inputs):
        traces = build_traces(loop_kernel, loop_inputs)
        with pytest.raises(ValueError):
            hardware_counters(
                compile_traces(traces), [Scheme(SchemeKind.BASELINE)]
            )


class TestCompilation:
    def test_columns_match_events(self, loop_kernel, loop_inputs):
        traces = build_traces(loop_kernel, loop_inputs)
        compiled = compile_traces(traces)
        assert compiled.dynamic_instructions == traces.dynamic_instructions
        for warp_index, trace in enumerate(traces.warp_traces):
            unique = compiled.unique[compiled.warp_to_unique[warp_index]]
            assert [event.ref.position for event in trace] == list(
                unique.positions
            )
            assert [event.guard_passed for event in trace] == [
                bool(flag) for flag in unique.guards
            ]
            assert [event.branch_taken for event in trace] == [
                bool(flag) for flag in unique.branches
            ]

    def test_compiled_form_is_cached(self, loop_kernel, loop_inputs):
        traces = build_traces(loop_kernel, loop_inputs)
        assert compile_traces(traces) is compile_traces(traces)

    def test_histogram_totals(self, loop_kernel, loop_inputs):
        traces = build_traces(loop_kernel, loop_inputs)
        compiled = compile_traces(traces)
        assert (
            sum(compiled.histogram.values())
            == traces.dynamic_instructions
        )

    def test_identical_warps_deduplicate(self, straight_kernel):
        inputs = [
            WarpInput({gpr(0): 0, gpr(1): 100, gpr(2): 5})
            for _ in range(4)
        ]
        traces = build_traces(straight_kernel, inputs)
        assert len(traces.warp_traces) == 4
        assert traces.unique_trace_count == 1
        compiled = compile_traces(traces)
        assert compiled.unique[0].multiplicity == 4
        assert compiled.first_warp == [0]
        assert compiled.warp_to_unique == [0, 0, 0, 0]
        _assert_paths_agree(traces)

    def test_dynamic_instructions_cached(self, loop_kernel, loop_inputs):
        traces = build_traces(loop_kernel, loop_inputs)
        first = traces.dynamic_instructions
        assert traces.__dict__["_dynamic_instructions"] == first
        assert traces.dynamic_instructions == first


class TestCaches:
    def test_baseline_cached_and_isolated(self, loop_kernel, loop_inputs):
        traces = build_traces(loop_kernel, loop_inputs)
        first = evaluate_traces(
            traces, Scheme(SchemeKind.BASELINE), use_compiled=True
        )
        # Mutating a returned counters object must not poison the cache.
        first.baseline.add_read(Level.MRF, False, 10_000)
        second = evaluate_traces(
            traces, Scheme(SchemeKind.BASELINE), use_compiled=True
        )
        assert second.baseline != first.baseline
        assert second.counters == second.baseline

    def test_kernel_analyses_cached_by_fingerprint(self, loop_kernel):
        liveness, shared = kernel_analyses(loop_kernel)
        again_liveness, again_shared = kernel_analyses(loop_kernel.clone())
        assert liveness is again_liveness
        assert shared is again_shared

    def test_operand_table_facts(self, loop_kernel):
        table = operand_table(loop_kernel)
        assert operand_table(loop_kernel) is table
        for ref, instruction in loop_kernel.instructions():
            position = ref.position
            assert table.read_regs[position] == tuple(
                reg for _, reg in instruction.gpr_reads()
            )
            assert table.write_reg[position] == instruction.gpr_write()
            assert table.shared[position] == instruction.unit.is_shared
            assert (
                table.long_latency[position]
                == instruction.is_long_latency
            )
        # The loop kernel's backward branch is flagged; nothing else is.
        backward = [
            position
            for position, flag in enumerate(table.backward_branch)
            if flag
        ]
        assert len(backward) == 1


class TestVectorizedAccounting:
    def test_baseline_counts_match_scalar_structure(
        self, straight_kernel, straight_inputs
    ):
        traces = build_traces(straight_kernel, straight_inputs)
        counters = baseline_counters(compile_traces(traces))
        assert counters.reads(Level.ORF) == 0
        assert counters.reads(Level.LRF) == 0
        assert counters.total_reads() > 0

    def test_software_counters_require_aligned_kernel(
        self, loop_kernel, loop_inputs
    ):
        from repro.alloc import AllocationConfig, allocate_kernel

        traces = build_traces(loop_kernel, loop_inputs)
        clone = loop_kernel.clone()
        allocate_kernel(clone, AllocationConfig(orf_entries=3))
        counters = software_counters(compile_traces(traces), clone)
        assert counters.total_reads() == baseline_counters(
            compile_traces(traces)
        ).total_reads()

    def test_merge_scaled_keeps_integers(self):
        into = AccessCounters()
        delta = AccessCounters()
        delta.add_read(Level.MRF, False, 3)
        merge_scaled(into, delta, 4)
        assert into.counts[(Level.MRF, True, False)] == 12
        assert isinstance(into.counts[(Level.MRF, True, False)], int)


class TestUsageHistogramDedup:
    def test_identical_warps_scale(self, straight_kernel):
        one = build_traces(
            straight_kernel,
            [WarpInput({gpr(0): 0, gpr(1): 100, gpr(2): 5})],
        )
        four = build_traces(
            straight_kernel,
            [
                WarpInput({gpr(0): 0, gpr(1): 100, gpr(2): 5})
                for _ in range(4)
            ],
        )
        single = usage_histogram(one)
        scaled = usage_histogram(four)
        assert scaled.total_values == 4 * single.total_values
        assert scaled.read_counts == {
            key: 4 * value for key, value in single.read_counts.items()
        }
        assert scaled.lifetimes == {
            key: 4 * value for key, value in single.lifetimes.items()
        }

    def test_matches_per_warp_walk(self, loop_kernel, loop_inputs):
        from repro.analysis.usage import (
            UsageHistogram,
            ValueUsageTracker,
        )

        traces = build_traces(loop_kernel, loop_inputs)
        expected = UsageHistogram()
        for trace in traces.warp_traces:
            tracker = ValueUsageTracker()
            for event in trace:
                tracker.observe(event.instruction, event.guard_passed)
            tracker.finish()
            expected.add_tracker(tracker)
        actual = usage_histogram(traces)
        assert actual == expected


class TestFingerprints:
    @staticmethod
    def _loop_traces(kernel, trip_counts):
        return build_traces(
            kernel,
            [
                WarpInput({gpr(0): 0, gpr(1): 1000, gpr(2): trips})
                for trips in trip_counts
            ],
        )

    def test_fingerprint_stable_and_distinct(self, loop_kernel):
        traces = self._loop_traces(loop_kernel, (5, 9))
        again = self._loop_traces(loop_kernel, (5, 9))
        assert traceset_fingerprint(traces) == traceset_fingerprint(again)
        fewer = self._loop_traces(loop_kernel, (5,))
        assert traceset_fingerprint(traces) != traceset_fingerprint(fewer)

    def test_fingerprint_sensitive_to_warp_order_multiplicity(
        self, loop_kernel
    ):
        ab = self._loop_traces(loop_kernel, (5, 9))
        ba = self._loop_traces(loop_kernel, (9, 5))
        aa = self._loop_traces(loop_kernel, (5, 5))
        assert traceset_fingerprint(ab) != traceset_fingerprint(ba)
        assert traceset_fingerprint(ab) != traceset_fingerprint(aa)

    def test_fingerprint_hashes_columns_not_data(self, straight_kernel):
        """Warps that differ only in data values account identically,
        so they share a fingerprint — that equivalence is what makes
        the dedup (and the engine cache) pay off."""
        low = build_traces(
            straight_kernel,
            [WarpInput({gpr(0): 0, gpr(1): 100, gpr(2): 5})],
        )
        high = build_traces(
            straight_kernel,
            [WarpInput({gpr(0): 8, gpr(1): 200, gpr(2): 9})],
        )
        assert traceset_fingerprint(low) == traceset_fingerprint(high)


class TestToggle:
    def test_env_toggle(self, monkeypatch):
        monkeypatch.delenv("REPRO_COMPILED", raising=False)
        assert compiled_enabled()
        monkeypatch.setenv("REPRO_COMPILED", "0")
        assert not compiled_enabled()
        monkeypatch.setenv("REPRO_COMPILED", "off")
        assert not compiled_enabled()
        monkeypatch.setenv("REPRO_COMPILED", "1")
        assert compiled_enabled()

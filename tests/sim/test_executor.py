"""Unit tests for the functional warp executor."""

import pytest

from repro.ir import parse_kernel
from repro.ir.registers import gpr
from repro.sim.executor import (
    ExecutionError,
    WarpExecutor,
    WarpInput,
    run_warp,
)
from repro.sim.memory import Memory


def _run(asm, values, memory=None, max_instructions=10_000):
    kernel = parse_kernel(asm)
    warp_input = WarpInput(
        live_in_values=values,
        memory=memory,
        max_instructions=max_instructions,
    )
    executor = WarpExecutor(kernel, warp_input)
    events = list(executor.run())
    return kernel, executor, events


class TestArithmetic:
    def test_alu_semantics(self):
        _, executor, _ = _run(
            """
            .kernel k
            .livein R0 R1
            entry:
                iadd R2, R0, R1
                isub R3, R0, R1
                imul R4, R0, R1
                imad R5, R0, R1, 100
                imin R6, R0, R1
                imax R7, R0, R1
                and R8, R0, R1
                or R9, R0, R1
                xor R10, R0, R1
                shl R11, R0, 2
                shr R12, R0, 1
                exit
            """,
            {gpr(0): 12, gpr(1): 5},
        )
        regs = executor.registers
        assert regs[gpr(2)] == 17
        assert regs[gpr(3)] == 7
        assert regs[gpr(4)] == 60
        assert regs[gpr(5)] == 160
        assert regs[gpr(6)] == 5
        assert regs[gpr(7)] == 12
        assert regs[gpr(8)] == 12 & 5
        assert regs[gpr(9)] == 12 | 5
        assert regs[gpr(10)] == 12 ^ 5
        assert regs[gpr(11)] == 48
        assert regs[gpr(12)] == 6

    def test_selp_and_setp(self):
        _, executor, _ = _run(
            """
            .kernel k
            .livein R0 R1
            entry:
                setp P0, R0, R1
                selp R2, R0, R1, P0
                exit
            """,
            {gpr(0): 3, gpr(1): 9},
        )
        # P0 = (3 < 9) = true -> selp picks first source.
        assert executor.registers[gpr(2)] == 3

    def test_sfu_safe_math(self):
        _, executor, _ = _run(
            """
            .kernel k
            .livein R0
            entry:
                rcp R1, R0
                sqrt R2, R0
                lg2 R3, R0
                exit
            """,
            {gpr(0): 0},
        )
        # Division by zero and log of zero are safe.
        assert executor.registers[gpr(1)] > 0
        assert executor.registers[gpr(3)] == 0.0


class TestMemory:
    def test_store_then_load(self):
        memory = Memory()
        _, executor, _ = _run(
            """
            .kernel k
            .livein R0 R1
            entry:
                stg [R0], R1
                ldg R2, [R0]
                exit
            """,
            {gpr(0): 100, gpr(1): 77},
            memory=memory,
        )
        assert executor.registers[gpr(2)] == 77
        assert memory.global_mem[100] == 77

    def test_unwritten_load_deterministic(self):
        values = []
        for _ in range(2):
            _, executor, _ = _run(
                ".kernel k\n.livein R0\nentry:\n ldg R1, [R0]\n exit\n",
                {gpr(0): 4},
                memory=Memory(seed=9),
            )
            values.append(executor.registers[gpr(1)])
        assert values[0] == values[1]

    def test_shared_and_global_disjoint(self):
        memory = Memory()
        memory.store_global(8, 1)
        memory.store_shared(8, 2)
        assert memory.load_global(8) == 1
        assert memory.load_shared(8) == 2

    def test_texture_deterministic(self):
        memory = Memory(seed=3)
        assert memory.texture_fetch(5) == memory.texture_fetch(5)


class TestControlFlow:
    def test_loop_trip_count(self, loop_kernel, loop_inputs):
        events = run_warp(loop_kernel, loop_inputs[0])
        ffma_count = sum(
            1 for e in events if e.instruction.opcode.value == "ffma"
        )
        assert ffma_count == 5  # R2 = 5 iterations

    def test_branch_taken_flag(self, loop_kernel, loop_inputs):
        events = run_warp(loop_kernel, loop_inputs[0])
        branches = [e for e in events if e.instruction.opcode.is_branch]
        assert sum(1 for b in branches if b.branch_taken) == 4
        assert sum(1 for b in branches if not b.branch_taken) == 1

    def test_hammock_both_paths_reachable(self, hammock_kernel):
        memory = Memory(seed=0)
        taken_paths = set()
        for base in range(6):
            events = run_warp(
                hammock_kernel,
                WarpInput({gpr(0): base, gpr(1): 500},
                          memory=Memory(seed=base)),
            )
            labels = {
                hammock_kernel.blocks[e.ref.block_index].label
                for e in events
            }
            taken_paths.add("big" in labels)
        assert taken_paths == {True, False}

    def test_guard_failed_write_suppressed(self):
        _, executor, events = _run(
            """
            .kernel k
            .livein R0 R1
            entry:
                setp P0, R1, R0
                @P0 iadd R2, R0, 1
                @!P0 iadd R2, R0, 2
                exit
            """,
            {gpr(0): 1, gpr(1): 5},
        )
        # P0 = (5 < 1) = false: first add squashed, second executes.
        assert executor.registers[gpr(2)] == 3
        squashed = [e for e in events if not e.guard_passed]
        assert len(squashed) == 1


class TestErrors:
    def test_uninitialised_read(self):
        with pytest.raises(ExecutionError):
            _run(
                ".kernel k\nentry:\n iadd R1, R9, 1\n exit\n", {}
            )

    def test_runaway_loop_capped(self):
        with pytest.raises(ExecutionError):
            _run(
                """
                .kernel k
                .livein R0
                entry:
                    iadd R0, R0, 1
                    bra entry
                """,
                {gpr(0): 0},
                max_instructions=100,
            )

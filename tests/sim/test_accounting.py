"""Unit tests for trace-driven access accounting."""

import pytest

from repro.alloc import AllocationConfig, allocate_kernel
from repro.hierarchy.counters import AccessCounters
from repro.ir import parse_kernel
from repro.ir.registers import gpr
from repro.levels import Level
from repro.sim import (
    Scheme,
    SchemeKind,
    WarpInput,
    build_traces,
    evaluate_traces,
)
from repro.sim.accounting import (
    BaselineAccounting,
    SoftwareAccounting,
    account_trace,
    shared_consumed_positions,
)


class TestBaselineAccounting:
    def test_counts_match_operands(self, straight_kernel, straight_inputs):
        traces = build_traces(straight_kernel, straight_inputs)
        counters = AccessCounters()
        for trace in traces.warp_traces:
            account_trace(BaselineAccounting(counters), trace)
        expected_reads = sum(
            len(event.instruction.gpr_reads())
            for trace in traces.warp_traces
            for event in trace
        )
        expected_writes = sum(
            1
            for trace in traces.warp_traces
            for event in trace
            if event.instruction.gpr_write() is not None
            and event.guard_passed
        )
        assert counters.total_reads() == expected_reads
        assert counters.total_writes() == expected_writes
        assert counters.reads(Level.ORF) == 0
        assert counters.reads(Level.LRF) == 0


class TestSoftwareAccounting:
    def test_unannotated_kernel_is_all_mrf(
        self, straight_kernel, straight_inputs
    ):
        straight_kernel.reset_annotations()
        traces = build_traces(straight_kernel, straight_inputs)
        counters = AccessCounters()
        for trace in traces.warp_traces:
            account_trace(SoftwareAccounting(counters), trace)
        assert counters.reads(Level.ORF) == 0
        assert counters.reads(Level.MRF) == counters.total_reads()

    def test_reads_conserved_under_allocation(
        self, loop_kernel, loop_inputs
    ):
        """Total SW reads equal baseline reads: every operand is read
        exactly once, from exactly one level."""
        traces = build_traces(loop_kernel, loop_inputs)
        baseline_eval = evaluate_traces(
            traces, Scheme(SchemeKind.BASELINE)
        )
        sw_eval = evaluate_traces(
            traces, Scheme(SchemeKind.SW_THREE_LEVEL, 3, split_lrf=True)
        )
        assert sw_eval.counters.total_reads() == pytest.approx(
            baseline_eval.counters.total_reads()
        )

    def test_read_operand_fill_counted_as_orf_write(self):
        kernel = parse_kernel(
            """
            .kernel ro
            .livein R0 R1
            entry:
                iadd R2, R0, 1
                iadd R3, R0, 2
                iadd R4, R0, 3
                stg [R1], R4
                exit
            """
        )
        allocate_kernel(kernel, AllocationConfig(orf_entries=3))
        traces = build_traces(
            kernel, [WarpInput({gpr(0): 0, gpr(1): 100})]
        )
        counters = AccessCounters()
        account_trace(SoftwareAccounting(counters), traces.warp_traces[0])
        # The R0 group: 1 MRF read + fill, 2 ORF reads.
        assert counters.reads(Level.ORF) >= 2
        assert counters.writes(Level.ORF) >= 1


class TestHardwareAccounting:
    def test_deschedule_on_pending_read(
        self, straight_kernel, straight_inputs
    ):
        traces = build_traces(straight_kernel, straight_inputs)
        hw = evaluate_traces(traces, Scheme(SchemeKind.HW_TWO_LEVEL, 4))
        # The flush at the ldg consumer writes live values back: MRF
        # writes exceed the SW count for the same trace.
        baseline = evaluate_traces(traces, Scheme(SchemeKind.BASELINE))
        assert (
            hw.counters.total_writes()
            > baseline.counters.total_writes()
        )

    def test_hw_reads_exceed_baseline(self, loop_kernel, loop_inputs):
        """Write-back reads make total HW reads > baseline reads."""
        traces = build_traces(loop_kernel, loop_inputs)
        hw = evaluate_traces(traces, Scheme(SchemeKind.HW_TWO_LEVEL, 3))
        baseline = evaluate_traces(traces, Scheme(SchemeKind.BASELINE))
        assert hw.counters.total_reads() > baseline.counters.total_reads()

    def test_three_level_uses_lrf(self, loop_kernel, loop_inputs):
        traces = build_traces(loop_kernel, loop_inputs)
        hw3 = evaluate_traces(traces, Scheme(SchemeKind.HW_THREE_LEVEL, 3))
        assert hw3.counters.reads(Level.LRF) > 0

    def test_shared_consumed_positions(self, loop_kernel):
        positions = shared_consumed_positions(loop_kernel)
        # R7 (position 4 feeds stg) is produced at position 3.
        producing = {
            ref.position
            for ref, inst in loop_kernel.instructions()
            if inst.gpr_write() is not None
        }
        assert positions <= producing
        assert positions  # the stg data producer must be in there


class TestSchemeValidation:
    def test_entries_bounds(self):
        with pytest.raises(ValueError):
            Scheme(SchemeKind.SW_TWO_LEVEL, 0)
        with pytest.raises(ValueError):
            Scheme(SchemeKind.SW_TWO_LEVEL, 9)

    def test_baseline_has_no_allocator(self):
        with pytest.raises(ValueError):
            Scheme(SchemeKind.BASELINE).allocation_config()

    def test_scheme_names(self):
        assert Scheme(SchemeKind.BASELINE).name == "baseline"
        assert Scheme(SchemeKind.HW_TWO_LEVEL, 3).name == "hw_3"
        assert (
            Scheme(SchemeKind.SW_THREE_LEVEL, 3, split_lrf=True).name
            == "sw_lrf_split_3"
        )

    def test_with_entries(self):
        scheme = Scheme(SchemeKind.SW_TWO_LEVEL, 3)
        assert scheme.with_entries(5).entries_per_thread == 5
        assert scheme.entries_per_thread == 3


class TestBackwardBranchFlushVariant:
    def test_flush_variant_costs_more(self, loop_kernel, loop_inputs):
        """The Section 7 HW variant that flushes the RFC at backward
        branches loses the cross-iteration residency benefit."""
        from repro.sim import build_traces

        traces = build_traces(loop_kernel, loop_inputs)
        resident = evaluate_traces(
            traces, Scheme(SchemeKind.HW_TWO_LEVEL, 3)
        )
        flushed = evaluate_traces(
            traces,
            Scheme(
                SchemeKind.HW_TWO_LEVEL, 3,
                flush_on_backward_branch=True,
            ),
        )
        assert (
            flushed.counters.reads(Level.MRF)
            >= resident.counters.reads(Level.MRF)
        )
        assert (
            flushed.counters.writes(Level.MRF)
            >= resident.counters.writes(Level.MRF)
        )

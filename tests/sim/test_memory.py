"""Unit tests for the functional memory model."""

from repro.sim.memory import Memory


class TestDeterminism:
    def test_same_seed_same_defaults(self):
        assert Memory(seed=5).load_global(40) == Memory(seed=5).load_global(40)

    def test_different_seeds_differ_somewhere(self):
        a = Memory(seed=1)
        b = Memory(seed=2)
        assert any(
            a.load_global(addr) != b.load_global(addr)
            for addr in range(0, 400, 4)
        )

    def test_defaults_are_small_nonnegative(self):
        memory = Memory(seed=9)
        for addr in range(0, 200, 4):
            value = memory.load_global(addr)
            assert 0 <= value < 251


class TestSpaces:
    def test_global_and_shared_independent(self):
        memory = Memory()
        memory.store_global(16, 111)
        memory.store_shared(16, 222)
        assert memory.load_global(16) == 111
        assert memory.load_shared(16) == 222

    def test_store_overwrites_default(self):
        memory = Memory(seed=3)
        default = memory.load_global(8)
        memory.store_global(8, default + 1)
        assert memory.load_global(8) == default + 1

    def test_texture_independent_of_global(self):
        memory = Memory(seed=3)
        memory.store_global(5, 0)
        assert memory.texture_fetch(5) == Memory(seed=3).texture_fetch(5)

    def test_float_addresses_truncate(self):
        memory = Memory()
        memory.store_global(12.0, 7)
        assert memory.load_global(12) == 7

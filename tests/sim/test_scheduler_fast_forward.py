"""The scheduler's all-stall fast-forward must be exact: cycle counts
match a naive cycle-by-cycle walk of the same issue rules."""

from typing import Dict, List, Sequence

import pytest

from repro.ir.instructions import FunctionalUnit
from repro.sim.executor import TraceEvent
from repro.sim.params import DEFAULT_PARAMS, SimParams
from repro.sim.runner import build_traces
from repro.sim.scheduler import (
    ScheduleResult,
    _WarpState,
    _do_issue,
    _issue_status,
    simulate_schedule,
)
from repro.workloads.suites import get_workload


def _simulate_naive(
    warp_traces: Sequence[Sequence[TraceEvent]],
    active_warps: int,
    params: SimParams = DEFAULT_PARAMS,
    max_cycles: int = 50_000_000,
) -> ScheduleResult:
    """The pre-fast-forward reference: advance one cycle at a time."""
    warps = [_WarpState(trace) for trace in warp_traces]
    pending: List[int] = list(range(len(warps)))
    active: List[int] = []
    unit_busy: Dict[FunctionalUnit, int] = {
        unit: 0 for unit in FunctionalUnit
    }
    cycle = 0
    issued = 0
    rotate = 0

    def refill_active() -> None:
        index = 0
        while len(active) < active_warps and index < len(pending):
            warp_id = pending[index]
            warp = warps[warp_id]
            if warp.wakeup <= cycle and not warp.finished:
                pending.pop(index)
                warp.active = True
                active.append(warp_id)
            else:
                index += 1

    refill_active()
    while any(not warp.finished for warp in warps):
        if cycle >= max_cycles:
            raise RuntimeError("reference simulation exceeded max_cycles")
        refill_active()
        for offset in range(len(active)):
            warp_id = (
                active[(rotate + offset) % len(active)] if active else None
            )
            if warp_id is None:
                break
            warp = warps[warp_id]
            if warp.finished:
                warp.active = False
                active.remove(warp_id)
                refill_active()
                break
            event = warp.next_event()
            status = _issue_status(warp, event, cycle, unit_busy, params)
            if status == "issue":
                _do_issue(warp, event, cycle, unit_busy, params)
                issued += 1
                rotate = (rotate + offset + 1) % max(1, len(active))
                break
            if status == "deschedule":
                warp.wakeup = max(
                    warp.long_pending.values(), default=cycle
                )
                warp.long_pending.clear()
                warp.active = False
                active.remove(warp_id)
                pending.append(warp_id)
                refill_active()
                break
        cycle += 1
    return ScheduleResult(
        cycles=max(1, cycle), instructions=issued,
        active_warps=active_warps,
    )


@pytest.mark.parametrize("workload", ["vectoradd", "reduction"])
@pytest.mark.parametrize("active_warps", [1, 2, 4, 32])
def test_fast_forward_matches_naive_walk(workload, active_warps):
    spec = get_workload(workload, scale=0.25)
    traces = build_traces(spec.kernel, spec.warp_inputs)
    fast = simulate_schedule(traces.warp_traces, active_warps)
    naive = _simulate_naive(traces.warp_traces, active_warps)
    assert fast.cycles == naive.cycles
    assert fast.instructions == naive.instructions

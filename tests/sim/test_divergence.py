"""Tests for SIMT divergent execution with reconvergence."""

import pytest

from repro.ir import parse_kernel
from repro.ir.registers import gpr
from repro.sim import (
    DivergentWarpInput,
    WarpExecutor,
    WarpInput,
    full_mask,
    run_divergent_warp,
)
from repro.sim.divergence import DivergentWarpExecutor
from repro.sim.memory import Memory

DIVERGENT_HAMMOCK = """
.kernel dh
.livein R0 R1
entry:
    setp P0, R0, 50
    @P0 bra small
big:
    imul R2, R0, 3
    bra merge
small:
    iadd R2, R0, 100
merge:
    stg [R1], R2
    exit
"""

DIVERGENT_LOOP = """
.kernel dl
.livein R0 R1 R2
entry:
    mov R5, 0
loop:
    ffma R5, R0, 3, R5
    iadd R2, R2, -1
    setp P0, 0, R2
    @P0 bra loop
done:
    stg [R1], R5
    exit
"""


def _reference(kernel, thread_values, seed=5):
    """Per-thread scalar execution results (lane isolation contract)."""
    results = []
    for values in thread_values:
        executor = WarpExecutor(
            kernel, WarpInput(dict(values), memory=Memory(seed=seed))
        )
        list(executor.run())
        results.append(dict(executor.registers))
    return results


def _simt(kernel, thread_values, seed=5):
    executor = DivergentWarpExecutor(
        kernel,
        DivergentWarpInput(
            [dict(v) for v in thread_values], memory=Memory(seed=seed)
        ),
    )
    events = list(executor.run())
    return executor, events


class TestFunctionalEquivalence:
    def test_hammock_matches_reference(self):
        kernel = parse_kernel(DIVERGENT_HAMMOCK)
        threads = [
            {gpr(0): 10 * t, gpr(1): 900 + t} for t in range(8)
        ]
        executor, _ = _simt(kernel, threads)
        reference = _reference(kernel, threads)
        for lane in range(8):
            assert (
                executor.registers[lane][gpr(2)]
                == reference[lane][gpr(2)]
            )

    def test_divergent_trip_counts_match_reference(self):
        kernel = parse_kernel(DIVERGENT_LOOP)
        threads = [
            {gpr(0): t, gpr(1): 900 + t, gpr(2): 1 + t % 4}
            for t in range(6)
        ]
        executor, _ = _simt(kernel, threads)
        reference = _reference(kernel, threads)
        for lane in range(6):
            assert (
                executor.registers[lane][gpr(5)]
                == reference[lane][gpr(5)]
            )

    def test_uniform_warp_degenerates_to_scalar(self):
        kernel = parse_kernel(DIVERGENT_HAMMOCK)
        threads = [{gpr(0): 7, gpr(1): 900}] * 4
        executor, events = _simt(kernel, threads)
        # No divergence: every event runs with the full mask.
        assert all(e.active_mask == full_mask(4) for e in events)


class TestMasks:
    def test_hammock_masks_partition_the_warp(self):
        kernel = parse_kernel(DIVERGENT_HAMMOCK)
        threads = [
            {gpr(0): 10 * t, gpr(1): 900 + t} for t in range(8)
        ]
        _, events = _simt(kernel, threads)
        big = kernel.block_index("big")
        small = kernel.block_index("small")
        merge = kernel.block_index("merge")
        masks = {}
        for event in events:
            masks.setdefault(event.ref.block_index, event.active_mask)
        assert masks[big] | masks[small] == full_mask(8)
        assert masks[big] & masks[small] == 0
        assert masks[merge] == full_mask(8)  # reconverged

    def test_loop_lanes_retire_progressively(self):
        kernel = parse_kernel(DIVERGENT_LOOP)
        threads = [
            {gpr(0): t, gpr(1): 900, gpr(2): 1 + t} for t in range(4)
        ]
        _, events = _simt(kernel, threads)
        loop = kernel.block_index("loop")
        loop_masks = [
            e.active_mask for e in events
            if e.ref.block_index == loop
            and e.instruction.opcode.value == "ffma"
        ]
        populations = [bin(m).count("1") for m in loop_masks]
        # 4 lanes on iteration 1, then 3, 2, 1.
        assert populations == [4, 3, 2, 1]
        done = kernel.block_index("done")
        done_masks = {
            e.active_mask for e in events if e.ref.block_index == done
        }
        assert done_masks == {full_mask(4)}  # all reconverge at exit


class TestAccountingCompatibility:
    def test_divergent_trace_feeds_accounting(self):
        from repro.alloc import AllocationConfig, allocate_kernel
        from repro.hierarchy.counters import AccessCounters
        from repro.sim.accounting import SoftwareAccounting, account_trace

        kernel = parse_kernel(DIVERGENT_HAMMOCK)
        allocate_kernel(kernel, AllocationConfig.best_paper_config())
        threads = [{gpr(0): 10 * t, gpr(1): 900} for t in range(8)]
        events = run_divergent_warp(
            kernel, DivergentWarpInput(threads)
        )
        counters = AccessCounters()
        account_trace(SoftwareAccounting(counters), events)
        assert counters.total_reads() > 0


class TestValidation:
    def test_empty_warp_rejected(self):
        kernel = parse_kernel(DIVERGENT_HAMMOCK)
        with pytest.raises(ValueError):
            DivergentWarpExecutor(kernel, DivergentWarpInput([]))

    def test_runaway_capped(self):
        kernel = parse_kernel(
            ".kernel r\n.livein R0\nentry:\n iadd R0, R0, 1\n bra entry\n"
        )
        from repro.sim.executor import ExecutionError

        with pytest.raises(ExecutionError):
            run_divergent_warp(
                kernel,
                DivergentWarpInput(
                    [{gpr(0): 0}], max_instructions=50
                ),
            )


class TestDivergentEvaluation:
    def test_schemes_evaluate_on_divergent_traces(self):
        """Energy accounting is robust to divergence: all schemes run,
        SW conserves reads, and nobody exceeds the baseline."""
        from repro.energy import normalized_energy
        from repro.sim import (
            Scheme,
            SchemeKind,
            build_divergent_traces,
            evaluate_traces,
        )

        kernel = parse_kernel(DIVERGENT_HAMMOCK)
        warp_inputs = [
            DivergentWarpInput(
                [{gpr(0): 10 * t + 3 * w, gpr(1): 900 + t}
                 for t in range(8)]
            )
            for w in range(2)
        ]
        traces = build_divergent_traces(kernel, warp_inputs)
        baseline = evaluate_traces(traces, Scheme(SchemeKind.BASELINE))
        for kind in (
            SchemeKind.HW_TWO_LEVEL,
            SchemeKind.SW_TWO_LEVEL,
            SchemeKind.SW_THREE_LEVEL,
        ):
            scheme = Scheme(kind, 3)
            evaluation = evaluate_traces(traces, scheme)
            energy = normalized_energy(
                evaluation.counters,
                evaluation.baseline,
                scheme.energy_model(),
            )
            assert 0.0 < energy <= 1.25
            if kind.is_software:
                assert evaluation.counters.total_reads() == (
                    baseline.counters.total_reads()
                )


class TestDivergentVerification:
    """Per-lane shadow verification: the allocation stays correct for
    every lane under divergence (the Figure 10c argument)."""

    def _verify(self, kernel, thread_sets, config):
        from repro.alloc import allocate_kernel
        from repro.sim.verify_divergent import verify_divergent_trace

        result = allocate_kernel(kernel, config)
        for threads in thread_sets:
            events = run_divergent_warp(
                kernel, DivergentWarpInput([dict(t) for t in threads])
            )
            stats = verify_divergent_trace(
                kernel, result.partition, events, len(threads)
            )
        return stats

    def test_divergent_hammock_verifies(self):
        from repro.alloc import AllocationConfig

        kernel = parse_kernel(DIVERGENT_HAMMOCK)
        threads = [{gpr(0): 10 * t, gpr(1): 900 + t} for t in range(8)]
        stats = self._verify(
            kernel, [threads], AllocationConfig.best_paper_config()
        )
        assert stats.lane_reads_checked > 0

    def test_divergent_loop_verifies(self):
        from repro.alloc import AllocationConfig

        kernel = parse_kernel(DIVERGENT_LOOP)
        threads = [
            {gpr(0): t, gpr(1): 900, gpr(2): 1 + t % 3}
            for t in range(6)
        ]
        for config in (
            AllocationConfig.best_paper_config(),
            AllocationConfig(orf_entries=1, use_lrf=True),
            AllocationConfig(orf_entries=3),
        ):
            self._verify(kernel, [threads], config)

    def test_benchmark_workloads_verify_divergently(self):
        """Every hammock-bearing benchmark verifies per lane with
        per-thread inputs that force both arms to execute."""
        from repro.alloc import AllocationConfig
        from repro.workloads import get_workload
        from repro.workloads.shapes import LIVE_INS

        for name in ("mergesort", "eigenvalues", "needle"):
            spec = get_workload(name)
            threads = [
                {
                    LIVE_INS[0]: 512 * t,
                    LIVE_INS[1]: 10_000 + 64 * t,
                    LIVE_INS[2]: 3 + t % 3,
                    LIVE_INS[3]: 3 + t,
                    LIVE_INS[4]: 7,
                }
                for t in range(8)
            ]
            self._verify(
                spec.kernel, [threads],
                AllocationConfig.best_paper_config(),
            )

    def test_corrupted_annotation_detected_per_lane(self):
        from repro.alloc import AllocationConfig, allocate_kernel
        from repro.ir.instructions import SourceAnnotation
        from repro.levels import Level
        from repro.sim.verify import AllocationVerificationError
        from repro.sim.verify_divergent import verify_divergent_trace

        kernel = parse_kernel(DIVERGENT_HAMMOCK)
        result = allocate_kernel(
            kernel, AllocationConfig.best_paper_config()
        )
        # Annotate the merge-point read of R2 as LRF bank 0 without a
        # matching write: every lane must observe the mismatch.
        merge_store = kernel.block("merge").instructions[0]
        anns = list(merge_store.src_anns)
        anns[1] = SourceAnnotation(level=Level.LRF, lrf_bank=0)
        merge_store.src_anns = tuple(anns)
        threads = [{gpr(0): 10 * t, gpr(1): 900} for t in range(4)]
        events = run_divergent_warp(
            kernel, DivergentWarpInput(threads)
        )
        with pytest.raises(AllocationVerificationError):
            verify_divergent_trace(kernel, result.partition, events, 4)

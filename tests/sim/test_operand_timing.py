"""Tests for the operand-delivery timing model."""

import pytest

from repro.alloc import AllocationConfig, allocate_kernel
from repro.experiments import run_timing_study
from repro.ir import parse_kernel
from repro.ir.registers import gpr
from repro.levels import Level
from repro.sim import WarpInput, run_warp
from repro.sim.operand_timing import (
    OperandCollector,
    OperandTimingParams,
    operand_fetch_delay,
    simulate_with_operand_timing,
)
from repro.workloads import get_workload


class TestOperandCollector:
    def test_distinct_groups_no_conflict(self):
        collector = OperandCollector(OperandTimingParams(bank_groups=4))
        assert collector.reserve(0, 10) == 10
        assert collector.reserve(1, 10) == 10
        assert collector.conflicts == 0

    def test_same_group_serialises(self):
        collector = OperandCollector(OperandTimingParams(bank_groups=4))
        assert collector.reserve(2, 10) == 10
        assert collector.reserve(2, 10) == 11
        assert collector.conflicts == 1

    def test_drain_frees_old_reservations(self):
        collector = OperandCollector(OperandTimingParams())
        collector.reserve(0, 5)
        collector.drain_before(100)
        assert collector.reserve(0, 5) == 5


class TestFetchDelay:
    def _event(self, kernel, position):
        events = run_warp(
            kernel, WarpInput({gpr(0): 1, gpr(1): 2, gpr(2): 3})
        )
        return next(e for e in events if e.ref.position == position)

    def test_mrf_operands_pay_base_latency(self):
        kernel = parse_kernel(
            ".kernel k\n.livein R0 R1 R2\nentry:\n"
            " iadd R3, R0, R1\n stg [R2], R3\n exit\n"
        )
        for _, inst in kernel.instructions():
            inst.ensure_default_annotations()
        event = self._event(kernel, 0)
        collector = OperandCollector(OperandTimingParams())
        delay = operand_fetch_delay(event, 0, collector)
        assert delay >= OperandTimingParams().base_fetch_cycles

    def test_orf_operands_skip_collector(self):
        kernel = parse_kernel(
            ".kernel k\n.livein R0 R1 R2\nentry:\n"
            " iadd R3, R0, R1\n iadd R4, R3, R3\n stg [R2], R4\n exit\n"
        )
        allocate_kernel(kernel, AllocationConfig(orf_entries=3))
        # Find the instruction whose reads are all ORF/LRF.
        events = run_warp(
            kernel, WarpInput({gpr(0): 1, gpr(1): 2, gpr(2): 3})
        )
        collector = OperandCollector(OperandTimingParams())
        for event in events:
            anns = event.instruction.src_anns
            reads = event.instruction.gpr_reads()
            if reads and anns and all(
                anns[slot].level is not Level.MRF for slot, _ in reads
            ):
                assert operand_fetch_delay(event, 0, collector) == 0
                break
        else:
            pytest.skip("no fully-ORF instruction in this allocation")

    def test_no_reads_no_delay(self):
        kernel = parse_kernel(
            ".kernel k\nentry:\n mov R1, 4\n stg [R1], R1\n exit\n"
        )
        event = self._event(kernel, 0)
        collector = OperandCollector(OperandTimingParams())
        assert operand_fetch_delay(event, 0, collector) == 0


class TestTimingStudy:
    def test_hierarchy_never_slower(self):
        specs = [get_workload("matrixmul"), get_workload("vectoradd")]
        result = run_timing_study(specs, num_warps=8)
        for point in result.points:
            assert point.ipc_ratio >= 0.97
        assert result.geomean_ratio() >= 0.99

    def test_hierarchy_sheds_bank_conflicts(self):
        specs = [get_workload("hotspot")]
        result = run_timing_study(specs, num_warps=16)
        (point,) = result.points
        assert (
            point.hierarchy.bank_conflicts
            <= point.baseline.bank_conflicts
        )

    def test_all_instructions_issue(self):
        spec = get_workload("vectoradd")
        spec.kernel.reset_annotations()
        for _, inst in spec.kernel.instructions():
            inst.ensure_default_annotations()
        traces = [
            run_warp(spec.kernel, warp_input)
            for warp_input in spec.warp_inputs
        ]
        outcome = simulate_with_operand_timing(traces, 4)
        assert outcome.instructions == sum(len(t) for t in traces)

"""Unit tests for the dynamic allocation verifier.

The verifier must (a) accept every allocation the allocator produces
(covered extensively elsewhere) and (b) *reject* deliberately corrupted
annotations — these tests check the rejection side.
"""

import pytest

from repro.alloc import AllocationConfig, allocate_kernel
from repro.ir.instructions import DestAnnotation, SourceAnnotation
from repro.ir.registers import gpr
from repro.levels import Level
from repro.sim import WarpInput, build_traces
from repro.sim.verify import (
    AllocationVerificationError,
    verify_trace,
)


@pytest.fixture
def allocated(loop_kernel, loop_inputs):
    result = allocate_kernel(
        loop_kernel, AllocationConfig.best_paper_config()
    )
    traces = build_traces(loop_kernel, loop_inputs)
    return loop_kernel, result, traces


class TestAcceptance:
    def test_valid_allocation_passes(self, allocated):
        kernel, result, traces = allocated
        for trace in traces.warp_traces:
            stats = verify_trace(kernel, result.partition, trace)
        assert stats.reads_checked > 0
        assert stats.invalidations > 0

    def test_unallocated_kernel_passes(self, loop_kernel, loop_inputs):
        from repro.strands import partition_strands

        loop_kernel.reset_annotations()
        partition = partition_strands(loop_kernel)
        traces = build_traces(loop_kernel, loop_inputs)
        for trace in traces.warp_traces:
            verify_trace(loop_kernel, partition, trace)


class TestRejection:
    def _first_orf_read(self, kernel):
        for ref, inst in kernel.instructions():
            if not inst.src_anns:
                continue
            for slot, _ in inst.gpr_reads():
                if inst.src_anns[slot].level is Level.ORF:
                    return inst, slot
        raise AssertionError("no ORF read found")

    def test_wrong_orf_entry_detected(self, allocated):
        kernel, result, traces = allocated
        inst, slot = self._first_orf_read(kernel)
        anns = list(inst.src_anns)
        wrong = (anns[slot].orf_entry + 1) % 3
        anns[slot] = SourceAnnotation(level=Level.ORF, orf_entry=wrong)
        inst.src_anns = tuple(anns)
        with pytest.raises(AllocationVerificationError):
            for trace in traces.warp_traces:
                verify_trace(kernel, result.partition, trace)

    def test_missing_mrf_write_detected(self, allocated):
        """Redirect a live-out value's write away from the MRF: a later
        MRF read must observe the stale value."""
        kernel, result, traces = allocated
        victim = None
        for ref, inst in kernel.instructions():
            ann = inst.dst_ann
            if ann and Level.MRF in ann.levels and len(ann.levels) > 1:
                victim = inst
                break
        if victim is None:
            pytest.skip("no dual-write value in this allocation")
        victim.dst_ann = DestAnnotation(
            levels=tuple(l for l in victim.dst_ann.levels
                         if l is not Level.MRF),
            orf_entry=victim.dst_ann.orf_entry,
            lrf_bank=victim.dst_ann.lrf_bank,
        )
        with pytest.raises(AllocationVerificationError):
            for trace in traces.warp_traces:
                verify_trace(kernel, result.partition, trace)

    def test_cross_strand_orf_read_detected(self, loop_kernel, loop_inputs):
        """Annotating a loop-carried read as an ORF hit must fail: the
        ORF does not survive the strand boundary."""
        result = allocate_kernel(
            loop_kernel, AllocationConfig(orf_entries=3)
        )
        # `ffma R5, R3, R2, R5`: the R5 source arrives from the
        # previous strand/iteration.
        ffma = next(
            inst
            for _, inst in loop_kernel.instructions()
            if inst.opcode.value == "ffma"
        )
        anns = list(ffma.src_anns)
        anns[2] = SourceAnnotation(level=Level.ORF, orf_entry=0)
        ffma.src_anns = tuple(anns)
        traces = build_traces(loop_kernel, loop_inputs)
        with pytest.raises(AllocationVerificationError):
            for trace in traces.warp_traces:
                verify_trace(loop_kernel, result.partition, trace)

    def test_never_written_register_detected(
        self, straight_kernel, straight_inputs
    ):
        from repro.strands import partition_strands

        straight_kernel.reset_annotations()
        partition = partition_strands(straight_kernel)
        # Corrupt the trace: read a register nothing ever wrote.
        traces = build_traces(straight_kernel, straight_inputs)
        from repro.ir.instructions import Instruction, Opcode
        from repro.sim.executor import TraceEvent

        rogue = Instruction(Opcode.IADD, gpr(20), (gpr(19), gpr(19)))
        events = list(traces.warp_traces[0])
        ref = events[0].ref
        events.insert(0, TraceEvent(ref, rogue, True))
        with pytest.raises(AllocationVerificationError):
            verify_trace(straight_kernel, partition, events)

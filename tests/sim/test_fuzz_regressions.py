"""Pinned fuzz-found allocator regressions.

Each entry here is a seed/config pair originally found by the
property-based fuzz (tests/test_properties.py).  While a bug is open
the pair is pinned as ``xfail(strict=True)``; once fixed, the pin is
promoted to a plain regression test (with divergent verification as
the oracle) so the bug cannot silently return.

``FUZZ_CORPUS`` is the full set of pinned seeds; the CI
differential-equivalence job drives every corpus seed through
divergent verification via :func:`test_fuzz_corpus_divergent_verifies`.
"""

import pytest

from repro.alloc import AllocationConfig, allocate_kernel
from repro.sim.divergence import DivergentWarpInput, run_divergent_warp
from repro.sim.verify_divergent import verify_divergent_trace
from repro.workloads import generate_workload

#: Seed 320 under a single-entry ORF with no LRF and forward branches
#: allowed: the R18 web ([16,16]) and the R17 read operand ([10,16])
#: were both placed in ORF entry 0 of strand 2, so the divergent
#: re-read at @16 (`imax R18, R11, R17`) observed a stale entry.  Fixed
#: by treating read-operand ranges as closed entry occupancy
#: (repro.alloc.intervals.windows_conflict).
FUZZ_320_CONFIG = AllocationConfig(
    orf_entries=1,
    use_lrf=False,
    split_lrf=False,
    allow_forward_branches=True,
)

#: Allocation configs the corpus seeds are verified under — the
#: single-entry config that exposed seed 320 plus the paper's default
#: and best configurations.
CORPUS_CONFIGS = [
    FUZZ_320_CONFIG,
    AllocationConfig(orf_entries=3),
    AllocationConfig.best_paper_config(),
]

#: Fuzz seeds pinned as regression oracles.  320 is the original
#: interval-sharing bug; the others exercise divergent hammocks,
#: guarded writes, and tight single-entry pressure from the same
#: generator family.
FUZZ_CORPUS = [7, 42, 101, 211, 320, 555, 777, 1009]


def _divergent_events(spec, num_lanes=4):
    """Per-lane inputs that force divergence where the kernel branches."""
    base = dict(spec.warp_inputs[0].live_in_values)
    threads = []
    for lane in range(num_lanes):
        values = dict(base)
        key = sorted(values, key=lambda r: r.index)[0]
        values[key] = values[key] + 13 * lane
        threads.append(values)
    return run_divergent_warp(spec.kernel, DivergentWarpInput(threads))


def test_fuzz_320_single_entry_orf_misread():
    """Seed 320 regression: no ORF entry interval-sharing misread."""
    spec = generate_workload(320, num_warps=1)
    result = allocate_kernel(spec.kernel, FUZZ_320_CONFIG)
    events = _divergent_events(spec)
    stats = verify_divergent_trace(
        spec.kernel, result.partition, events, 4
    )
    assert stats.lane_reads_checked > 0


@pytest.mark.parametrize("seed", FUZZ_CORPUS)
@pytest.mark.parametrize(
    "config", CORPUS_CONFIGS, ids=["orf1", "default", "best"]
)
def test_fuzz_corpus_divergent_verifies(seed, config):
    """Every corpus seed allocates soundly under divergent execution."""
    spec = generate_workload(seed, num_warps=1)
    result = allocate_kernel(spec.kernel, config)
    events = _divergent_events(spec)
    stats = verify_divergent_trace(
        spec.kernel, result.partition, events, 4
    )
    assert stats.instructions == len(events)

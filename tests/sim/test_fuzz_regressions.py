"""Pinned fuzz-found allocator regressions.

Each entry here is a *known-bad* seed/config pair found by the
property-based fuzz (tests/test_properties.py) and pinned as
``xfail(strict=True)``: the test starts passing the day the underlying
bug is fixed, which flips it to XPASS and fails the run — the pin must
then be promoted to a plain regression test.
"""

import sys

import pytest

from repro.alloc import AllocationConfig, allocate_kernel
from repro.obs.explain import explain_report
from repro.sim.divergence import DivergentWarpInput, run_divergent_warp
from repro.sim.verify import AllocationVerificationError
from repro.sim.verify_divergent import verify_divergent_trace
from repro.workloads import generate_workload

#: Seed 320 under a single-entry ORF with no LRF and forward branches
#: allowed: the R18 web ([16,16]) and the R17 read operand ([10,16])
#: are both placed in ORF entry 0 of strand 2, so the divergent re-read
#: at @16 (`imax R18, R11, R17`) observes R18's value instead of R17's.
FUZZ_320_CONFIG = AllocationConfig(
    orf_entries=1,
    use_lrf=False,
    split_lrf=False,
    allow_forward_branches=True,
)


@pytest.mark.xfail(
    strict=True,
    raises=AllocationVerificationError,
    reason="fuzz_320: overlapping ORF[0] residency misreads @16 imax R18",
)
def test_fuzz_320_single_entry_orf_misread():
    spec = generate_workload(320, num_warps=1)
    result = allocate_kernel(spec.kernel, FUZZ_320_CONFIG)
    base = dict(spec.warp_inputs[0].live_in_values)
    threads = []
    for lane in range(4):
        values = dict(base)
        key = sorted(values, key=lambda r: r.index)[0]
        values[key] = values[key] + 13 * lane
        threads.append(values)
    events = run_divergent_warp(spec.kernel, DivergentWarpInput(threads))
    try:
        verify_divergent_trace(spec.kernel, result.partition, events, 4)
    except AllocationVerificationError:
        # Dump the allocator's decision chain for the offending
        # register so the failure is diagnosable straight from the log.
        print(
            explain_report(spec.kernel, FUZZ_320_CONFIG, reg="R18"),
            file=sys.stderr,
        )
        raise

"""Regression tests for the cross-scheme kernel-mutation hazard.

Historically ``evaluate_traces`` ran the allocator on the *shared*
``traces.kernel`` in place.  That made every software evaluation a
side effect: the traced kernel silently accumulated the most recent
scheme's annotations, a previously returned evaluation's
``allocation.kernel`` was clobbered by the next evaluation, and any
accounting that read annotations off trace events depended on whatever
allocation happened to run last.  These tests pin the fixed contract:
evaluation is pure with respect to the trace set.
"""

from __future__ import annotations

import pytest

from repro.sim.runner import build_traces, evaluate_traces
from repro.sim.schemes import Scheme, SchemeKind
from repro.workloads.suites import get_workload


@pytest.fixture(scope="module")
def traces():
    spec = get_workload("matrixmul")
    return build_traces(spec.kernel, spec.warp_inputs)


def _annotation_snapshot(kernel):
    return [
        (
            instruction.ends_strand,
            instruction.dst_ann,
            instruction.src_anns,
        )
        for _, instruction in kernel.instructions()
    ]


SW_A = Scheme(SchemeKind.SW_THREE_LEVEL, 3, split_lrf=True)
SW_B = Scheme(SchemeKind.SW_TWO_LEVEL, 8)
HW = Scheme(SchemeKind.HW_TWO_LEVEL, 3)


def test_evaluate_traces_leaves_traced_kernel_untouched(traces):
    """A software-scheme evaluation must not annotate ``traces.kernel``."""
    before = _annotation_snapshot(traces.kernel)
    evaluate_traces(traces, SW_A)
    assert _annotation_snapshot(traces.kernel) == before


def test_earlier_allocation_survives_later_evaluation(traces):
    """An evaluation's allocation must not be clobbered by the next one."""
    first = evaluate_traces(traces, SW_A)
    snapshot = _annotation_snapshot(first.allocation.kernel)
    evaluate_traces(traces, SW_B)
    assert _annotation_snapshot(first.allocation.kernel) == snapshot


def test_scheme_order_does_not_change_counters(traces):
    """SW -> HW -> SW must equal fresh single-scheme evaluations."""
    fresh = {
        scheme: evaluate_traces(traces, scheme)
        for scheme in (SW_A, HW, SW_B)
    }
    sequenced = [
        evaluate_traces(traces, scheme)
        for scheme in (SW_A, HW, SW_B, SW_A)
    ]
    assert sequenced[0].counters == fresh[SW_A].counters
    assert sequenced[1].counters == fresh[HW].counters
    assert sequenced[2].counters == fresh[SW_B].counters
    # Back-to-back repeat of the first scheme reproduces it exactly.
    assert sequenced[3].counters == fresh[SW_A].counters
    assert all(
        evaluation.baseline == fresh[SW_A].baseline
        for evaluation in sequenced
    )


def test_allocation_annotates_a_clone_not_the_original(traces):
    evaluation = evaluate_traces(traces, SW_A)
    assert evaluation.allocation is not None
    annotated = evaluation.allocation.kernel
    assert annotated is not traces.kernel
    assert (
        annotated.content_fingerprint()
        == traces.kernel.content_fingerprint()
    )
    # The clone actually carries the allocation the counters came from.
    assert any(
        instruction.dst_ann is not None or instruction.src_anns
        for _, instruction in annotated.instructions()
    )

"""Unit tests for the two-level warp scheduler timing model."""

import pytest

from repro.ir import parse_kernel
from repro.ir.registers import gpr
from repro.sim.executor import WarpInput, run_warp
from repro.sim.params import DEFAULT_PARAMS, SimParams
from repro.sim.scheduler import active_warp_sweep, simulate_schedule


def _traces(asm, num_warps, trip=6):
    kernel = parse_kernel(asm)
    return [
        run_warp(
            kernel,
            WarpInput({gpr(0): 4096 * w, gpr(1): 900_000 + 4096 * w,
                       gpr(2): trip + (w % 3)}),
        )
        for w in range(num_warps)
    ]


LOAD_LOOP = """
.kernel ll
.livein R0 R1 R2
entry:
    mov R5, 0
loop:
    ldg R3, [R0]
    ffma R5, R3, R2, R5
    iadd R0, R0, 4
    iadd R2, R2, -1
    setp P0, 0, R2
    @P0 bra loop
done:
    stg [R1], R5
    exit
"""

ALU_ONLY = """
.kernel alu
.livein R0 R1 R2
entry:
    mov R5, 0
loop:
    iadd R3, R0, 1
    imul R4, R3, R3
    iadd R5, R5, R4
    iadd R2, R2, -1
    setp P0, 0, R2
    @P0 bra loop
done:
    stg [R1], R5
    exit
"""


class TestBasicProperties:
    def test_single_warp_bounded_ipc(self):
        traces = _traces(ALU_ONLY, 1)
        result = simulate_schedule(traces, 1)
        assert 0 < result.ipc <= 1.0
        assert result.instructions == len(traces[0])

    def test_all_instructions_issue(self):
        traces = _traces(LOAD_LOOP, 4)
        result = simulate_schedule(traces, 4)
        assert result.instructions == sum(len(t) for t in traces)

    def test_more_warps_hide_latency(self):
        one = simulate_schedule(_traces(LOAD_LOOP, 1), 1)
        many = simulate_schedule(_traces(LOAD_LOOP, 8), 8)
        assert many.ipc > one.ipc

    def test_ipc_monotone_with_active_set(self):
        traces = _traces(LOAD_LOOP, 16)
        sweep = active_warp_sweep(traces, (1, 2, 4, 8, 16))
        ipcs = [sweep[a].ipc for a in (1, 2, 4, 8, 16)]
        for smaller, larger in zip(ipcs, ipcs[1:]):
            assert larger >= smaller * 0.95  # allow scheduling noise

    def test_paper_claim_eight_active_enough(self):
        """With 8 active warps (of 16 here) the two-level scheduler
        reaches all-active performance."""
        traces = _traces(LOAD_LOOP, 16, trip=8)
        eight = simulate_schedule(traces, 8)
        every = simulate_schedule(traces, 16)
        assert eight.ipc >= 0.9 * every.ipc

    def test_alu_bound_kernel_saturates_at_eight(self):
        """The 8-cycle ALU latency on dependence chains needs ~8 warps
        to hide — the basis of the paper's 8-active-warp choice."""
        traces = _traces(ALU_ONLY, 8)
        four = simulate_schedule(traces, 4)
        eight = simulate_schedule(traces, 8)
        assert eight.ipc > four.ipc          # still latency-bound at 4
        assert eight.ipc >= 0.9              # saturated at 8

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_schedule([], 0)

    def test_custom_params(self):
        params = SimParams(dram_latency=10)
        traces = _traces(LOAD_LOOP, 2)
        fast = simulate_schedule(traces, 2, params)
        slow = simulate_schedule(traces, 2, DEFAULT_PARAMS)
        assert fast.cycles < slow.cycles

    def test_shared_unit_throughput_limits(self):
        """MEM-bound kernels are limited by the 4-cycle shared unit
        occupancy, not by warp count."""
        mem_heavy = """
        .kernel mem
        .livein R0 R1 R2
        loop:
            lds R3, [R0]
            lds R4, [R1]
            iadd R2, R2, -1
            setp P0, 0, R2
            @P0 bra loop
        done:
            exit
        """
        traces = _traces(mem_heavy, 16, trip=8)
        result = simulate_schedule(traces, 16)
        # 2 of 5 loop instructions occupy MEM for 4 cycles each: IPC
        # cannot exceed 5 instructions / 8 cycles.
        assert result.ipc <= 5 / 8 + 0.05

"""`allocate_for_traces` memo-key correctness.

The memo is keyed on (kernel content fingerprint, allocation config,
energy model).  Two structurally different kernels must never collide,
and a memo hit must return the identical ``AllocationResult`` object —
that identity is what makes the compiled path's per-kernel annotation
caches pay off across evaluations.
"""

from repro.energy.model import EnergyModel
from repro.ir import parse_kernel
from repro.sim.runner import allocate_for_traces
from repro.sim.schemes import Scheme, SchemeKind

KERNEL_A = """
.kernel memo_a
.livein R0 R1
entry:
    iadd R2, R0, 1
    imul R3, R2, R2
    stg [R1], R3
    exit
"""

#: Same length and register set as KERNEL_A, different opcodes — a
#: structural difference only the content fingerprint can see.
KERNEL_B = """
.kernel memo_a
.livein R0 R1
entry:
    isub R2, R0, 1
    iadd R3, R2, R2
    stg [R1], R3
    exit
"""

CONFIG = Scheme(SchemeKind.SW_THREE_LEVEL, 3).allocation_config()


def test_memo_hit_returns_identical_object():
    kernel = parse_kernel(KERNEL_A)
    memo = {}
    first = allocate_for_traces(kernel, CONFIG, memo=memo)
    second = allocate_for_traces(kernel, CONFIG, memo=memo)
    assert second is first
    # A structurally identical clone fingerprints the same, so it hits.
    third = allocate_for_traces(kernel.clone(), CONFIG, memo=memo)
    assert third is first


def test_structurally_different_kernels_never_collide():
    memo = {}
    a = allocate_for_traces(parse_kernel(KERNEL_A), CONFIG, memo=memo)
    b = allocate_for_traces(parse_kernel(KERNEL_B), CONFIG, memo=memo)
    assert a is not b
    assert len(memo) == 2
    assert a.kernel.content_fingerprint() != (
        b.kernel.content_fingerprint()
    )


def test_config_and_model_are_part_of_the_key():
    kernel = parse_kernel(KERNEL_A)
    memo = {}
    base = allocate_for_traces(kernel, CONFIG, memo=memo)
    other_config = Scheme(
        SchemeKind.SW_TWO_LEVEL, 2
    ).allocation_config()
    varied = allocate_for_traces(kernel, other_config, memo=memo)
    assert varied is not base
    scaled = allocate_for_traces(
        kernel, CONFIG, model=EnergyModel(orf_energy_scale=2.0), memo=memo
    )
    assert scaled is not base
    assert len(memo) == 3


def test_explicit_default_model_hits_the_none_entry():
    # Passing the config's own energy model spelled out must land on
    # the same memo entry as model=None — the key is normalized, so a
    # sweep mixing both spellings allocates once.
    kernel = parse_kernel(KERNEL_A)
    memo = {}
    base = allocate_for_traces(kernel, CONFIG, memo=memo)
    explicit = allocate_for_traces(
        kernel, CONFIG, model=EnergyModel(orf_entries=3), memo=memo
    )
    assert explicit is base
    assert len(memo) == 1


def test_no_memo_allocates_fresh_clones():
    kernel = parse_kernel(KERNEL_A)
    first = allocate_for_traces(kernel, CONFIG)
    second = allocate_for_traces(kernel, CONFIG)
    assert first is not second
    # The traced kernel itself is never annotated.
    for _, instruction in kernel.instructions():
        assert instruction.dst_ann is None
        assert instruction.src_anns is None

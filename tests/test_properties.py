"""Property-based tests (hypothesis) on the core invariants.

The central property is the paper's implicit correctness contract: for
*any* valid kernel and *any* allocator configuration, every annotated
read observes the architecturally correct value — checked by the
shadow-executing verifier over random structured kernels.
"""

from hypothesis import given, settings, strategies as st

from repro.alloc import AllocationConfig, allocate_kernel
from repro.alloc.intervals import EntryFile
from repro.ir import format_kernel, parse_kernel
from repro.sim import Scheme, SchemeKind, build_traces, evaluate_traces
from repro.sim.verify import verify_trace
from repro.workloads import GeneratorConfig, generate_workload

_SEEDS = st.integers(min_value=0, max_value=10_000)

_CONFIGS = st.builds(
    AllocationConfig,
    orf_entries=st.integers(min_value=1, max_value=8),
    use_lrf=st.booleans(),
    split_lrf=st.booleans(),
    enable_partial_ranges=st.booleans(),
    enable_read_operands=st.booleans(),
    allow_forward_branches=st.booleans(),
)

_GEN_CONFIGS = st.builds(
    GeneratorConfig,
    num_segments=st.integers(min_value=1, max_value=6),
    ops_per_segment=st.integers(min_value=3, max_value=10),
    loop_probability=st.floats(min_value=0.0, max_value=0.6),
    hammock_probability=st.floats(min_value=0.0, max_value=0.6),
    load_probability=st.floats(min_value=0.0, max_value=0.4),
    sfu_probability=st.floats(min_value=0.0, max_value=0.3),
)


@settings(max_examples=60, deadline=None)
@given(seed=_SEEDS, config=_CONFIGS)
def test_allocation_never_misreads(seed, config):
    """Any allocation of any random kernel verifies dynamically."""
    spec = generate_workload(seed, num_warps=1)
    result = allocate_kernel(spec.kernel, config)
    traces = build_traces(spec.kernel, spec.warp_inputs)
    for trace in traces.warp_traces:
        verify_trace(spec.kernel, result.partition, trace)


@settings(max_examples=25, deadline=None)
@given(seed=_SEEDS, gen_config=_GEN_CONFIGS)
def test_random_shapes_verify_under_best_config(seed, gen_config):
    spec = generate_workload(seed, config=gen_config, num_warps=1)
    result = allocate_kernel(
        spec.kernel, AllocationConfig.best_paper_config()
    )
    traces = build_traces(spec.kernel, spec.warp_inputs)
    for trace in traces.warp_traces:
        verify_trace(spec.kernel, result.partition, trace)


@settings(max_examples=30, deadline=None)
@given(seed=_SEEDS)
def test_software_reads_conserved(seed):
    """The SW hierarchy services every operand read exactly once."""
    spec = generate_workload(seed, num_warps=1)
    traces = build_traces(spec.kernel, spec.warp_inputs)
    baseline = evaluate_traces(traces, Scheme(SchemeKind.BASELINE))
    software = evaluate_traces(
        traces, Scheme(SchemeKind.SW_THREE_LEVEL, 3, split_lrf=True)
    )
    assert software.counters.total_reads() == (
        baseline.counters.total_reads()
    )


@settings(max_examples=30, deadline=None)
@given(seed=_SEEDS, entries=st.integers(min_value=1, max_value=8))
def test_software_energy_never_exceeds_baseline(seed, entries):
    """The allocator only moves values when it saves energy, so the
    software scheme can never consume more than the baseline."""
    from repro.energy import normalized_energy

    spec = generate_workload(seed, num_warps=1)
    traces = build_traces(spec.kernel, spec.warp_inputs)
    scheme = Scheme(SchemeKind.SW_THREE_LEVEL, entries, split_lrf=True)
    evaluation = evaluate_traces(traces, scheme)
    assert (
        normalized_energy(
            evaluation.counters, evaluation.baseline, scheme.energy_model()
        )
        <= 1.0 + 1e-9
    )


@settings(max_examples=30, deadline=None)
@given(seed=_SEEDS)
def test_mrf_writes_never_exceed_baseline(seed):
    """Each produced value is written to the MRF at most once."""
    from repro.levels import Level

    spec = generate_workload(seed, num_warps=1)
    traces = build_traces(spec.kernel, spec.warp_inputs)
    baseline = evaluate_traces(traces, Scheme(SchemeKind.BASELINE))
    software = evaluate_traces(traces, Scheme(SchemeKind.SW_TWO_LEVEL, 3))
    assert software.counters.writes(Level.MRF) <= (
        baseline.counters.writes(Level.MRF)
    )


@settings(max_examples=30, deadline=None)
@given(seed=_SEEDS)
def test_parser_round_trip(seed):
    spec = generate_workload(seed, num_warps=1)
    text = format_kernel(spec.kernel)
    assert format_kernel(parse_kernel(text)) == text


@settings(max_examples=30, deadline=None)
@given(seed=_SEEDS)
def test_strand_positions_increase_along_paths(seed):
    """Within one strand execution, layout positions strictly increase
    (the invariant behind interval-based entry sharing)."""
    from repro.strands import partition_strands

    spec = generate_workload(seed, num_warps=1)
    partition = partition_strands(spec.kernel)
    traces = build_traces(spec.kernel, spec.warp_inputs)
    for trace in traces.warp_traces:
        previous_position = None
        previous_strand = None
        for event in trace:
            position = event.ref.position
            strand = partition.strand_of_position[position]
            if (
                previous_strand is not None
                and strand == previous_strand
                and position > (previous_position or 0)
            ):
                assert position > previous_position
            previous_position = position
            previous_strand = strand


@settings(max_examples=50, deadline=None)
@given(
    windows=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=40),
            st.integers(min_value=0, max_value=15),
        ),
        max_size=25,
    )
)
def test_entry_file_never_double_books(windows):
    """Accepted allocations on one entry never overlap in write phase
    or span another's window."""
    entries = EntryFile(1)
    accepted = []
    for begin, length in windows:
        end = begin + length
        if entries.is_available(0, begin, end):
            entries.allocate(0, begin, end)
            accepted.append((begin, end))
    for i, (b1, e1) in enumerate(accepted):
        for b2, e2 in accepted[i + 1:]:
            assert b1 != b2
            assert b1 >= e2 or b2 >= e1


@settings(max_examples=30, deadline=None)
@given(seed=_SEEDS)
def test_usage_histogram_consistent(seed):
    from repro.analysis.usage import UsageHistogram
    from repro.sim import usage_histogram

    spec = generate_workload(seed, num_warps=1)
    traces = build_traces(spec.kernel, spec.warp_inputs)
    histogram = usage_histogram(traces)
    assert sum(histogram.read_counts.values()) == histogram.total_values
    assert (
        sum(histogram.lifetimes.values()) == histogram.read_once_total
    )
    assert histogram.read_once_total == histogram.read_counts["1"]


@settings(max_examples=25, deadline=None)
@given(seed=_SEEDS)
def test_uniform_divergent_execution_equals_scalar(seed):
    """With identical per-lane inputs, SIMT execution must follow the
    scalar executor's path exactly and produce the same final state."""
    from repro.ir.registers import gpr
    from repro.sim import WarpExecutor, WarpInput
    from repro.sim.divergence import (
        DivergentWarpExecutor,
        DivergentWarpInput,
    )
    from repro.sim.memory import Memory

    spec = generate_workload(seed, num_warps=1)
    values = dict(spec.warp_inputs[0].live_in_values)

    scalar = WarpExecutor(
        spec.kernel, WarpInput(dict(values), memory=Memory(seed=seed))
    )
    scalar_events = [e.ref.position for e in scalar.run()]

    simt = DivergentWarpExecutor(
        spec.kernel,
        DivergentWarpInput(
            [dict(values) for _ in range(4)], memory=Memory(seed=seed)
        ),
    )
    simt_events = [e.ref.position for e in simt.run()]

    assert simt_events == scalar_events
    for lane in range(4):
        assert simt.registers[lane] == scalar.registers


@settings(max_examples=25, deadline=None)
@given(seed=_SEEDS)
def test_divergent_lanes_match_isolated_scalar_runs(seed):
    """Memory-free kernels: each lane's SIMT result must equal running
    that lane alone through the scalar executor."""
    from repro.ir.registers import gpr
    from repro.sim import WarpExecutor, WarpInput
    from repro.sim.divergence import (
        DivergentWarpExecutor,
        DivergentWarpInput,
    )

    config = GeneratorConfig(
        load_probability=0.0,
        store_probability=0.0,
        sfu_probability=0.1,
        hammock_probability=0.5,
        loop_probability=0.3,
    )
    spec = generate_workload(seed, config=config, num_warps=1)
    base = dict(spec.warp_inputs[0].live_in_values)
    lanes = []
    for lane in range(4):
        values = dict(base)
        # Perturb one live-in so branches diverge across lanes.
        key = next(iter(values))
        values[key] = values[key] + 37 * lane
        lanes.append(values)

    simt = DivergentWarpExecutor(
        spec.kernel, DivergentWarpInput([dict(v) for v in lanes])
    )
    list(simt.run())

    for lane, values in enumerate(lanes):
        scalar = WarpExecutor(spec.kernel, WarpInput(dict(values)))
        list(scalar.run())
        assert simt.registers[lane] == scalar.registers


@settings(max_examples=40, deadline=None)
@given(seed=_SEEDS, config=_CONFIGS)
def test_allocation_never_misreads_under_divergence(seed, config):
    """Per-lane correctness: any allocation of any random kernel
    verifies lane-by-lane when the warp's threads diverge."""
    from repro.sim.divergence import DivergentWarpInput, run_divergent_warp
    from repro.sim.verify_divergent import verify_divergent_trace

    spec = generate_workload(seed, num_warps=1)
    result = allocate_kernel(spec.kernel, config)
    base = dict(spec.warp_inputs[0].live_in_values)
    threads = []
    for lane in range(4):
        values = dict(base)
        key = sorted(values, key=lambda r: r.index)[0]
        values[key] = values[key] + 13 * lane
        threads.append(values)
    events = run_divergent_warp(
        spec.kernel, DivergentWarpInput(threads)
    )
    verify_divergent_trace(spec.kernel, result.partition, events, 4)


@settings(max_examples=30, deadline=None)
@given(seed=_SEEDS)
def test_linear_scan_preserves_semantics(seed):
    """Lowering virtual registers onto the MRF namespace never changes
    what a kernel computes."""
    from repro.compiler import run_linear_scan
    from repro.sim import WarpExecutor, WarpInput
    from repro.sim.memory import Memory

    spec = generate_workload(seed, num_warps=1)
    values = dict(spec.warp_inputs[0].live_in_values)
    lowered = run_linear_scan(spec.kernel)
    assert lowered.kernel.num_architectural_registers <= 32

    def stores(kernel):
        memory = Memory(seed=seed)
        executor = WarpExecutor(
            kernel, WarpInput(dict(values), memory=memory)
        )
        list(executor.run())
        return sorted(memory.global_mem.items())

    assert stores(spec.kernel) == stores(lowered.kernel)


@settings(max_examples=30, deadline=None)
@given(seed=_SEEDS)
def test_scheduling_preserves_semantics(seed):
    """Both list-scheduling strategies are semantics-preserving on
    arbitrary structured kernels."""
    from repro.compiler import ScheduleStrategy, schedule_kernel
    from repro.sim import WarpExecutor, WarpInput
    from repro.sim.memory import Memory

    spec = generate_workload(seed, num_warps=1)
    values = dict(spec.warp_inputs[0].live_in_values)

    def stores(kernel):
        memory = Memory(seed=seed)
        executor = WarpExecutor(
            kernel, WarpInput(dict(values), memory=memory)
        )
        list(executor.run())
        return sorted(memory.global_mem.items())

    expected = stores(spec.kernel)
    for strategy in ScheduleStrategy:
        assert stores(schedule_kernel(spec.kernel, strategy)) == expected


@settings(max_examples=20, deadline=None)
@given(seed=_SEEDS)
def test_compiled_kernels_still_verify(seed):
    """The full pipeline (schedule + linear scan + allocation) yields
    annotations that verify dynamically."""
    from repro.compiler import ScheduleStrategy, compile_kernel
    from repro.sim import build_traces
    from repro.sim.executor import WarpInput

    spec = generate_workload(seed, num_warps=1)
    result = compile_kernel(
        spec.kernel, strategy=ScheduleStrategy.SHORTEN_LIFETIMES
    )
    traces = build_traces(
        result.kernel,
        [WarpInput(dict(spec.warp_inputs[0].live_in_values))],
    )
    for trace in traces.warp_traces:
        verify_trace(result.kernel, result.allocation.partition, trace)


@settings(max_examples=25, deadline=None)
@given(seed=_SEEDS)
def test_dominance_and_postdominance_consistency(seed):
    """Structural invariants of the dominance analyses on random
    kernels: the entry dominates every reachable block, immediate
    dominators dominate their children, and every reconvergence point
    post-dominates its branch block."""
    from repro.analysis.cfg import ControlFlowGraph
    from repro.analysis.dominance import DominatorTree
    from repro.analysis.postdom import PostDominatorTree

    spec = generate_workload(seed, num_warps=1)
    cfg = ControlFlowGraph(spec.kernel)
    dom = DominatorTree(cfg)
    postdom = PostDominatorTree(cfg)

    for block in cfg.reverse_postorder:
        assert dom.dominates(cfg.entry, block)
        parent = dom.idom[block]
        if parent is not None:
            assert dom.dominates(parent, block)
        reconverge = postdom.immediate_post_dominator(block)
        if reconverge is not None:
            assert postdom.post_dominates(reconverge, block)
            assert reconverge != block


@settings(max_examples=25, deadline=None)
@given(seed=_SEEDS)
def test_strand_report_totals_consistent(seed):
    spec = generate_workload(seed, num_warps=1)
    result = allocate_kernel(
        spec.kernel, AllocationConfig.best_paper_config()
    )
    report = result.strand_report()
    summary = result.summary()
    assert sum(r["webs"] for r in report) == summary["webs"]
    assert sum(r["orf_values"] for r in report) == summary["orf_values"]
    assert sum(r["read_operands"] for r in report) == (
        summary["read_operands"]
    )
    assert all(r["estimated_savings_pj"] >= 0 for r in report)

"""POST /v1/tune: normalisation, dedup, worker path, live server."""

import contextlib
import threading

import pytest

from repro.engine import ExperimentEngine
from repro.service.client import ServiceClient
from repro.service.pipeline import run_service_job
from repro.service.protocol import BadRequest, normalize_request
from repro.service.server import ServiceConfig, ServiceServer
from repro.tuner import run_tune
from repro.tuner.space import space_from_dict
from repro.workloads.suites import get_workload

TUNE_BODY = {
    "benchmark": "vectoradd",
    "strategy": "hillclimb",
    "budget": 20,
    "seed": 3,
}


@contextlib.contextmanager
def running_server(**overrides):
    defaults = dict(port=0, jobs=2, executor="thread")
    defaults.update(overrides)
    server = ServiceServer(ServiceConfig(**defaults))
    thread = threading.Thread(target=server.run_forever, daemon=True)
    thread.start()
    assert server.started.wait(10), "server did not start"
    try:
        yield server
    finally:
        server.request_shutdown()
        thread.join(10)


class TestNormalization:
    def test_defaults_are_filled_and_canonical(self):
        job = normalize_request("tune", {"benchmark": "vectoradd"})
        assert job.op == "tune"
        tune = job.payload["tune"]
        assert tune["strategy"] == "evolutionary"
        assert tune["budget"] == 64
        assert tune["seed"] == 0
        assert tune["objective"] == "energy"
        # The space is resolved to explicit axis lists.
        assert tune["space"]["parameters"]["orf_entries"] == list(
            range(1, 9)
        )
        assert tune["space"]["parameters"][
            "assume_persistent_strands"
        ] == [False]

    def test_equivalent_spellings_share_a_fingerprint(self):
        explicit = normalize_request(
            "tune",
            {
                "benchmark": "vectoradd",
                "strategy": "evolutionary",
                "budget": 64,
                "seed": 0,
                "objective": "energy",
            },
        )
        defaulted = normalize_request("tune", {"benchmark": "vectoradd"})
        assert explicit.fingerprint == defaulted.fingerprint

        restricted = normalize_request(
            "tune",
            {
                "benchmark": "vectoradd",
                "space": {"parameters": {"orf_entries": [1, 2]}},
            },
        )
        assert restricted.fingerprint != defaulted.fingerprint

    def test_distinct_search_params_get_distinct_fingerprints(self):
        base = normalize_request("tune", dict(TUNE_BODY))
        for override in (
            {"strategy": "exhaustive"},
            {"budget": 21},
            {"seed": 4},
            {"objective": "mrf"},
        ):
            other = normalize_request(
                "tune", dict(TUNE_BODY, **override)
            )
            assert other.fingerprint != base.fingerprint

    def test_kernel_text_form_includes_warps(self):
        kernel = (
            ".kernel tiny\n.livein R0 R1\nentry:\n"
            "    iadd R2, R0, R1\n    stg [R0], R2\n    exit\n"
        )
        job = normalize_request("tune", {"kernel": kernel, "budget": 5})
        assert job.payload["warps"] == [
            {"live_in": {}, "max_instructions": 200_000}
        ]

    @pytest.mark.parametrize(
        "body, match",
        [
            ({"benchmark": "vectoradd", "strategy": "annealing"},
             "unknown strategy"),
            ({"benchmark": "vectoradd", "objective": "latency"},
             "unknown objective"),
            ({"benchmark": "vectoradd", "budget": 0}, "budget"),
            ({"benchmark": "vectoradd", "budget": 100_000}, "budget"),
            ({"benchmark": "vectoradd", "seed": -1}, "seed"),
            ({"benchmark": "vectoradd", "scheme": {"kind": "sw"}},
             "'scheme' does not apply to tune"),
            ({"benchmark": "vectoradd",
              "space": {"parameters": {"orf_entries": [99]}}},
             "outside the supported axis"),
            ({"benchmark": "vectoradd", "bogus": 1}, "unknown request"),
        ],
    )
    def test_bad_requests_are_rejected(self, body, match):
        with pytest.raises(BadRequest, match=match):
            normalize_request("tune", body)


class TestWorkerPath:
    def test_worker_result_matches_direct_run_tune(self):
        job = normalize_request("tune", dict(TUNE_BODY))
        result = run_service_job(job.payload)
        assert result["op"] == "tune"
        assert result["kernel"] == "vectoradd"

        engine = ExperimentEngine()
        spec = get_workload("vectoradd", 1.0)
        traces = engine.build_traces(spec.kernel, spec.warp_inputs)
        direct = run_tune(
            traces,
            space=space_from_dict(job.payload["tune"]["space"]),
            strategy="hillclimb",
            budget=20,
            seed=3,
            engine=engine,
        )
        service = result["tuner"]
        assert service["best"] == direct["best"]
        assert service["frontier"] == direct["frontier"]
        assert service["trace"] == direct["trace"]


class TestLiveServer:
    def test_tune_round_trip_and_memo(self):
        with running_server() as server:
            client = ServiceClient(port=server.port)
            first = client.tune(**TUNE_BODY)
            assert first["served_from"] == "computed"
            tuner = first["tuner"]
            assert (
                tuner["best"]["objective"]
                <= tuner["baseline"]["objective"]
            )
            assert tuner["evaluations"]["distinct"] == 20

            second = client.tune(**TUNE_BODY)
            assert second["served_from"] == "cache"
            assert second["fingerprint"] == first["fingerprint"]
            assert second["tuner"] == first["tuner"]

    def test_tune_bad_request_is_400(self):
        with running_server() as server:
            client = ServiceClient(port=server.port)
            status, payload = client.request_raw(
                "POST", "/v1/tune",
                {"benchmark": "vectoradd", "strategy": "annealing"},
            )
            assert status == 400
            assert payload["error"]["type"] == "bad_request"

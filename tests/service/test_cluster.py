"""Cluster coordinator tests over real sockets, in-process shards.

Each test boots N :class:`ServiceServer` shards (thread executor) and
one :class:`ClusterCoordinator` on ephemeral ports, all in background
threads, and talks real HTTP through the coordinator.  Allocate
requests on the loadgen kernel keep the compute cheap; routing,
failover, hot-key replication, and the rollup endpoint are what's
under test.
"""

import contextlib
import threading
import time

from repro.service.client import ServiceClient, ServiceError
from repro.service.cluster import ClusterConfig, ClusterCoordinator
from repro.service.loadgen import LOADGEN_KERNEL
from repro.service.server import ServiceConfig, ServiceServer


def allocate_body(entries: int = 3):
    return {
        "kernel": LOADGEN_KERNEL,
        "scheme": {
            "kind": "sw_lrf",
            "entries_per_thread": entries,
            "split_lrf": True,
        },
    }


def _safe_shutdown(server):
    """Idempotent shutdown (a test may have stopped the server already,
    leaving its event loop closed)."""
    try:
        server.request_shutdown()
    except RuntimeError:
        pass


@contextlib.contextmanager
def running_cluster(num_shards=2, **overrides):
    """(coordinator, shards): everything up, torn down afterwards."""
    with contextlib.ExitStack() as stack:
        shards = []
        for index in range(num_shards):
            server = ServiceServer(
                ServiceConfig(
                    port=0,
                    jobs=2,
                    executor="thread",
                    shard=f"{index}/{num_shards}",
                )
            )
            thread = threading.Thread(
                target=server.run_forever, daemon=True
            )
            thread.start()
            assert server.started.wait(10), "shard did not start"
            assert server._startup_error is None
            stack.callback(thread.join, 10)
            stack.callback(_safe_shutdown, server)
            shards.append(server)
        defaults = dict(
            port=0,
            shards=tuple(f"127.0.0.1:{s.port}" for s in shards),
            probe_interval_s=0.1,
        )
        defaults.update(overrides)
        coordinator = ClusterCoordinator(ClusterConfig(**defaults))
        thread = threading.Thread(
            target=coordinator.run_forever, daemon=True
        )
        thread.start()
        assert coordinator.started.wait(10), "coordinator did not start"
        assert coordinator._startup_error is None
        stack.callback(thread.join, 10)
        stack.callback(_safe_shutdown, coordinator)
        yield coordinator, shards


def client_for(coordinator) -> ServiceClient:
    return ServiceClient(port=coordinator.port)


def counters(coordinator):
    return coordinator.metrics.to_dict()["counters"]


def test_coordinator_healthz_and_routing_determinism():
    with running_cluster(num_shards=2) as (coordinator, _):
        client = client_for(coordinator)
        health = client.healthz()
        assert health["role"] == "coordinator"
        assert health["shards"] == 2
        assert health["healthy_shards"] == 2

        first = client.allocate(**allocate_body())
        assert first["served_from"] == "computed"
        owner = first["shard"]
        assert owner in ("0/2", "1/2")
        for _ in range(3):
            repeat = client.allocate(**allocate_body())
            # Same fingerprint → same shard → shard-local memo hit.
            assert repeat["shard"] == owner
            assert repeat["served_from"] == "cache"
        assert counters(coordinator)["cluster_route_cache_hits"] >= 3


def test_distinct_bodies_spread_and_dedup_survives():
    with running_cluster(num_shards=2) as (coordinator, _):
        client = client_for(coordinator)
        owners = {
            entries: client.allocate(**allocate_body(entries))["shard"]
            for entries in range(1, 9)
        }
        assert set(owners.values()) == {"0/2", "1/2"}, (
            "8 distinct fingerprints all routed to one shard"
        )
        rollup = client.cluster_healthz()
        assert sorted(rollup["shards"]) == ["0/2", "1/2"]
        for entries, owner in owners.items():
            assert (
                client.allocate(**allocate_body(entries))["shard"] == owner
            )
        rollup = client.cluster_healthz()
        hits = sum(
            entry["dedup"]["service_memo_hits"]
            for entry in rollup["shards"].values()
        )
        assert hits >= 8


def test_bad_requests_pass_through_and_fault_cache_replays():
    with running_cluster(num_shards=2) as (coordinator, _):
        client = client_for(coordinator)
        for _ in range(2):
            status, payload = client.request_raw(
                "POST", "/v1/evaluate", {"benchmark": "no-such-benchmark"}
            )
            assert status == 400
            assert payload["error"]["type"] == "bad_request"
        status, payload = client.request_raw("POST", "/v1/allocate", None)
        assert status == 400
        # The second identical bad body was answered from the route
        # cache without re-normalising.
        assert counters(coordinator)["cluster_route_cache_hits"] >= 1
        assert counters(coordinator)["http_400"] >= 3
        status, _ = client.request_raw("GET", "/v1/allocate")
        assert status == 405
        status, _ = client.request_raw("GET", "/v1/nope")
        assert status == 404


def test_shard_death_fails_over_and_reports_unhealthy():
    # A huge probe interval keeps the background prober out of the
    # picture: the *forward* must discover the death and fail over.
    with running_cluster(num_shards=2, probe_interval_s=3600.0) as (
        coordinator,
        shards,
    ):
        client = client_for(coordinator)
        # Pin down which shard owns this body, then kill it.
        victim_label = client.allocate(**allocate_body())["shard"]
        victim = shards[int(victim_label.split("/")[0])]
        survivor_label = f"{1 - int(victim_label.split('/')[0])}/2"
        victim.request_shutdown()
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            try:
                ServiceClient(port=victim.port, timeout=1.0).healthz()
            except OSError:
                break
            except ServiceError:
                pass  # 503 while draining: socket still open
            time.sleep(0.05)

        # The owning shard is gone: the job must fail over to the
        # survivor — a 200, not a 5xx storm.
        response = client.allocate(**allocate_body())
        assert response["shard"] == survivor_label
        assert counters(coordinator).get("cluster_retries", 0) >= 1

        rollup = client.cluster_healthz()
        assert rollup["status"] == "degraded"
        by_label = {
            entry["address"]: entry["healthy"]
            for entry in rollup["shards"].values()
        }
        assert by_label[f"127.0.0.1:{victim.port}"] is False
        assert by_label[f"127.0.0.1:{shards[1 - shards.index(victim)].port}"]
        assert client.healthz()["healthy_shards"] == 1

        # And new, never-seen work still lands somewhere healthy.
        fresh = client.allocate(**allocate_body(entries=7))
        assert fresh["shard"] == survivor_label


def test_hot_key_replicates_across_shards():
    with running_cluster(
        num_shards=2,
        hot_threshold=2,
        hot_window_s=60.0,
        replication=2,
        front_cache_entries=0,  # keep every request hitting shards
    ) as (coordinator, _):
        client = client_for(coordinator)
        for _ in range(12):
            assert client.allocate(**allocate_body())["served_from"] in (
                "computed",
                "cache",
            )
        tally = counters(coordinator)
        assert tally.get("cluster_hot_keys_promoted", 0) >= 1
        touched = [
            name
            for name in tally
            if name.startswith("cluster_shard_requests{")
        ]
        assert len(touched) == 2, (
            f"hot key stayed on one shard: {tally}"
        )


def test_front_cache_serves_hot_repeats_from_memory():
    with running_cluster(
        num_shards=2,
        hot_threshold=2,
        hot_window_s=60.0,
        front_cache_threshold=2,
    ) as (coordinator, _):
        client = client_for(coordinator)
        first = client.allocate(**allocate_body())
        for _ in range(5):
            repeat = client.allocate(**allocate_body())
            assert {
                key: value
                for key, value in repeat.items()
                if key not in ("served_from",)
            } == {
                key: value
                for key, value in first.items()
                if key not in ("served_from",)
            }
        assert counters(coordinator)["cluster_front_cache_hits"] >= 1


def test_draining_coordinator_rejects_new_work():
    with running_cluster(num_shards=1) as (coordinator, _):
        client = client_for(coordinator)
        assert client.allocate(**allocate_body())["served_from"]
        coordinator.draining = True
        status, payload = client.request_raw(
            "POST", "/v1/allocate", allocate_body()
        )
        assert status == 503
        assert payload["error"]["type"] == "draining"
        coordinator.draining = False


def test_prometheus_exposition_carries_shard_label():
    with running_cluster(num_shards=2) as (coordinator, _):
        client = client_for(coordinator)
        client.allocate(**allocate_body())
        import http.client

        connection = http.client.HTTPConnection(
            "127.0.0.1", coordinator.port
        )
        try:
            connection.request(
                "GET", "/metrics", headers={"Accept": "text/plain"}
            )
            response = connection.getresponse()
            text = response.read().decode("utf-8")
        finally:
            connection.close()
        assert "version=0.0.4" in response.getheader("Content-Type")
        assert 'repro_cluster_shard_requests_total{shard="' in text
        # HELP/TYPE appear once per family even with multiple labels.
        assert (
            text.count("# TYPE repro_cluster_shard_requests_total counter")
            == 1
        )

"""Worker-side analysis sharing: N schemes of one kernel, one analysis.

Service jobs are single-scheme, so the batching win inside a worker
process comes from the allocator's shared analysis cache — every
scheme's ``allocate_for_traces`` hits the same
:class:`~repro.alloc.analysis.KernelAnalysis` entry for the kernel.
This runs :func:`run_service_job` in-process (the worker entry point is
a plain function) and inspects the cache directly.
"""

from repro.alloc.analysis import _ANALYSIS_CACHE, clear_analysis_cache
from repro.service.pipeline import run_service_job
from repro.service.protocol import normalize_request
from repro.sim.schemes import Scheme, SchemeKind


def _allocate_job(scheme: Scheme):
    return normalize_request(
        "allocate",
        {
            "benchmark": "vectoradd",
            "scheme": {
                "kind": scheme.kind.value,
                "entries_per_thread": scheme.entries_per_thread,
                "split_lrf": scheme.split_lrf,
            },
        },
    ).payload


def test_worker_shares_one_analysis_across_schemes():
    schemes = [
        Scheme(SchemeKind.SW_TWO_LEVEL, entries)
        for entries in (1, 2, 3)
    ] + [
        Scheme(SchemeKind.SW_THREE_LEVEL, 3),
        Scheme(SchemeKind.SW_THREE_LEVEL, 3, split_lrf=True),
    ]
    clear_analysis_cache()
    results = [run_service_job(_allocate_job(s)) for s in schemes]
    # Five schemes, one kernel, one persistence flavour: one analysis.
    assert len(_ANALYSIS_CACHE) == 1
    assert len({r["kernel"] for r in results}) == 1
    assert all(r["annotations"] for r in results)

"""Consistent-hash-ring properties the cluster tier depends on.

Three load-bearing guarantees: placement is *balanced* (no shard gets
a pathological share of the keyspace), *stable* (rebuilding the ring
from the same membership — in any order — places every key
identically), and *minimally disruptive* (membership changes move only
the keys that must move, never reshuffle bystanders).
"""

from repro.service.cluster.ring import ConsistentHashRing

KEYS = [f"fingerprint-{index:05d}" for index in range(4000)]


def members(count: int):
    return [f"10.0.0.{index}:8077" for index in range(count)]


def placements(ring: ConsistentHashRing):
    return {key: ring.lookup(key) for key in KEYS}


def test_uniformity_one_to_eight_shards():
    for count in range(1, 9):
        ring = ConsistentHashRing(members(count))
        distribution = ring.distribution(KEYS)
        assert sum(distribution.values()) == len(KEYS)
        fair = len(KEYS) / count
        for member in members(count):
            share = distribution.get(member, 0)
            assert 0.5 * fair <= share <= 1.5 * fair, (
                f"{count} shards: {member} holds {share} keys "
                f"(fair share {fair:.0f})"
            )


def test_placement_stable_across_rebuilds():
    baseline = placements(ConsistentHashRing(members(5)))
    shuffled = list(reversed(members(5)))
    assert placements(ConsistentHashRing(shuffled)) == baseline
    assert placements(ConsistentHashRing(members(5) * 2)) == baseline


def test_join_moves_keys_only_to_the_new_member():
    before = placements(ConsistentHashRing(members(4)))
    grown = members(4) + ["10.0.1.99:8077"]
    after = placements(ConsistentHashRing(grown))
    moved = 0
    for key in KEYS:
        if after[key] != before[key]:
            moved += 1
            assert after[key] == "10.0.1.99:8077", (
                f"{key} moved between pre-existing members "
                f"({before[key]} -> {after[key]})"
            )
    fair = len(KEYS) / len(grown)
    assert 0 < moved <= 2.0 * fair


def test_leave_moves_only_the_departed_members_keys():
    departed = members(5)[2]
    before = placements(ConsistentHashRing(members(5)))
    remaining = [m for m in members(5) if m != departed]
    after = placements(ConsistentHashRing(remaining))
    for key in KEYS:
        if before[key] == departed:
            assert after[key] != departed
        else:
            assert after[key] == before[key], (
                f"{key} moved despite its owner staying "
                f"({before[key]} -> {after[key]})"
            )


def test_lookup_n_distinct_preference_order():
    ring = ConsistentHashRing(members(4))
    for key in KEYS[:200]:
        order = ring.lookup_n(key, 4)
        assert len(order) == 4
        assert len(set(order)) == 4
        assert order[0] == ring.lookup(key)
        # Asking for fewer yields the same prefix.
        assert ring.lookup_n(key, 2) == order[:2]


def test_lookup_n_caps_at_membership():
    ring = ConsistentHashRing(members(3))
    assert len(ring.lookup_n("anything", 10)) == 3


def test_single_member_owns_everything():
    ring = ConsistentHashRing(members(1))
    assert set(placements(ring).values()) == {members(1)[0]}

"""Cluster-wide observability: trace propagation across the
coordinator→shard HTTP hop and the ``/v1/cluster/metrics`` rollup.

Shards here run in-process (threads), so coordinator and shard spans
land in the same process-wide tracer — exactly what lets these tests
assert the cross-hop parent/child chain without file merging.
"""

import json
import urllib.request

import pytest

from repro.obs.tracer import TRACER
from repro.service.client import ServiceClient

from tests.service.test_cluster import allocate_body, running_cluster


@pytest.fixture(autouse=True)
def clean_tracer():
    TRACER.reset()
    yield
    TRACER.reset()


def _get(port, path):
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}{path}", timeout=10
    ) as response:
        return response.read().decode("utf-8")


def test_shard_spans_nest_under_coordinator_request():
    with running_cluster(num_shards=2) as (coordinator, _shards):
        TRACER.configure(enabled=True)
        client = ServiceClient(port=coordinator.port)
        client.allocate(**allocate_body())
        TRACER.enabled = False
        spans = TRACER.drain()

    by_id = {span.span_id: span for span in spans}
    requests = [
        s for s in spans
        if s.name == "cluster.request"
        and s.attributes.get("path") == "/v1/allocate"
    ]
    assert len(requests) == 1
    root = requests[0]
    assert root.parent_id is None
    assert root.attributes["status"] == 200

    forwards = [s for s in spans if s.name == "cluster.forward"]
    assert forwards
    for forward in forwards:
        assert by_id[forward.parent_id].name == "cluster.request"
        assert forward.trace_id == root.trace_id

    served = [
        s for s in spans
        if s.name == "service.request"
        and s.attributes.get("path") == "/v1/allocate"
    ]
    assert served, "shard never recorded the forwarded request"
    for span in served:
        parent = by_id[span.parent_id]
        assert parent.name == "cluster.forward"
        assert by_id[parent.parent_id].span_id == root.span_id
        assert span.trace_id == root.trace_id


def test_untraced_requests_carry_no_header_and_cost_nothing():
    with running_cluster(num_shards=1) as (coordinator, _shards):
        client = ServiceClient(port=coordinator.port)
        client.allocate(**allocate_body())
        assert TRACER.drain() == []


def test_cluster_metrics_json_rollup_is_exact():
    with running_cluster(num_shards=2) as (coordinator, _shards):
        client = ServiceClient(port=coordinator.port)
        for entries in range(1, 5):
            client.allocate(**allocate_body(entries))
        payload = json.loads(
            _get(coordinator.port, "/v1/cluster/metrics")
        )

    assert payload["role"] == "coordinator"
    assert set(payload["shards"]) == {"0", "1"}
    snapshots = [
        entry["metrics"] for entry in payload["shards"].values()
    ]
    assert all(snapshot is not None for snapshot in snapshots)

    aggregate = payload["aggregate"]
    assert aggregate["counters"]["http_requests"] == sum(
        s["counters"].get("http_requests", 0) for s in snapshots
    )
    merged = aggregate["histograms"]["http_request_seconds"]
    parts = [s["histograms"]["http_request_seconds"] for s in snapshots]
    assert merged["count"] == sum(p["count"] for p in parts)
    assert merged["bucket_counts"] == [
        sum(pair) for pair in zip(*(p["bucket_counts"] for p in parts))
    ]
    assert payload["coordinator"]["counters"]["cluster_requests"] >= 4


def test_cluster_metrics_prometheus_carries_shard_labels():
    with running_cluster(num_shards=2) as (coordinator, _shards):
        client = ServiceClient(port=coordinator.port)
        client.allocate(**allocate_body())
        text = _get(
            coordinator.port, "/v1/cluster/metrics?format=prometheus"
        )

    assert 'shard="coordinator"' in text
    assert 'shard="0"' in text and 'shard="1"' in text
    # The exact cross-shard merge appears as one shard="cluster" series.
    assert 'repro_http_request_seconds_bucket{shard="cluster",le=' in text
    assert 'repro_http_request_seconds_count{shard="cluster"}' in text
    # One HELP/TYPE block per metric family, not per shard.
    assert text.count("# TYPE repro_http_requests_total counter") == 1

"""Client retry/backoff behaviour (no sockets: request_raw is stubbed).

The backoff contract: ``Retry-After`` from the server wins (capped),
otherwise capped exponential backoff with jitter from a *seeded* RNG —
two clients built with the same seed sleep identical schedules, and
nothing touches the module-level ``random`` state.
"""

import asyncio
import random

import pytest

from repro.service.client import (
    AsyncServiceClient,
    ServiceClient,
    ServiceError,
    backoff_delay,
)


def delays(seed: int, attempts: int, **kwargs):
    rng = random.Random(seed)
    return [
        backoff_delay(attempt, None, rng=rng, **kwargs)
        for attempt in range(attempts)
    ]


def test_backoff_deterministic_per_seed():
    first = delays(7, 6, base_s=0.05, cap_s=2.0)
    second = delays(7, 6, base_s=0.05, cap_s=2.0)
    assert first == second
    assert first != delays(8, 6, base_s=0.05, cap_s=2.0)


def test_backoff_exponential_window_with_jitter():
    for seed in range(20):
        rng = random.Random(seed)
        for attempt in range(8):
            delay = backoff_delay(
                attempt, None, base_s=0.05, cap_s=2.0, rng=rng
            )
            window = min(2.0, 0.05 * 2.0 ** attempt)
            assert 0.5 * window <= delay <= window


def test_retry_after_wins_and_is_capped():
    rng = random.Random(0)
    assert backoff_delay(0, 0.25, base_s=0.05, cap_s=2.0, rng=rng) == 0.25
    assert backoff_delay(5, 30.0, base_s=0.05, cap_s=2.0, rng=rng) == 2.0
    assert backoff_delay(0, -3.0, base_s=0.05, cap_s=2.0, rng=rng) == 0.0


def _flaky_responses(script):
    """A request_raw stub yielding the scripted (status, payload) list."""
    remaining = list(script)

    def fake(method, path, body=None):
        status, payload = remaining.pop(0)
        if status is None:
            raise ConnectionRefusedError("scripted connection failure")
        return status, payload

    return fake, remaining


OK = (200, {"status": "ok"})
SHED = (429, {"error": {"type": "overloaded", "retry_after": 0.0}})
DRAIN = (503, {"error": {"type": "draining"}})
BAD = (400, {"error": {"type": "bad_request", "message": "nope"}})


def sync_client(retries):
    return ServiceClient(
        retries=retries, backoff_base_s=0.0, backoff_cap_s=0.0
    )


def test_sync_client_retries_retryable_statuses(monkeypatch):
    client = sync_client(retries=3)
    fake, remaining = _flaky_responses([SHED, DRAIN, (None, None), OK])
    monkeypatch.setattr(client, "request_raw", fake)
    assert client.healthz() == {"status": "ok"}
    assert not remaining


def test_sync_client_gives_up_after_budget(monkeypatch):
    client = sync_client(retries=1)
    fake, _ = _flaky_responses([SHED, SHED, OK])
    monkeypatch.setattr(client, "request_raw", fake)
    with pytest.raises(ServiceError) as excinfo:
        client.healthz()
    assert excinfo.value.status == 429


def test_sync_client_never_retries_non_retryable(monkeypatch):
    client = sync_client(retries=5)
    fake, remaining = _flaky_responses([BAD, OK])
    monkeypatch.setattr(client, "request_raw", fake)
    with pytest.raises(ServiceError) as excinfo:
        client.healthz()
    assert excinfo.value.status == 400
    assert remaining == [OK]  # no second attempt happened


def test_sync_client_honours_retry_after(monkeypatch):
    client = ServiceClient(
        retries=1, backoff_base_s=10.0, backoff_cap_s=10.0
    )
    slept = []
    monkeypatch.setattr(
        "repro.service.client.time.sleep", slept.append
    )
    fake, _ = _flaky_responses(
        [(429, {"error": {"type": "overloaded", "retry_after": 0.125}}), OK]
    )
    monkeypatch.setattr(client, "request_raw", fake)
    assert client.healthz() == {"status": "ok"}
    assert slept == [0.125]


def test_sync_client_zero_retries_raises_immediately(monkeypatch):
    client = sync_client(retries=0)
    fake, _ = _flaky_responses([SHED, OK])
    monkeypatch.setattr(client, "request_raw", fake)
    with pytest.raises(ServiceError):
        client.healthz()


def test_async_client_retries_then_succeeds(monkeypatch):
    client = AsyncServiceClient(
        retries=2, backoff_base_s=0.0, backoff_cap_s=0.0
    )
    fake, remaining = _flaky_responses([SHED, DRAIN, OK])

    async def fake_async(method, path, body=None):
        return fake(method, path, body)

    monkeypatch.setattr(client, "request_raw", fake_async)
    assert asyncio.run(client.call("GET", "/healthz")) == {"status": "ok"}
    assert not remaining


def test_async_client_never_retries_non_retryable(monkeypatch):
    client = AsyncServiceClient(
        retries=5, backoff_base_s=0.0, backoff_cap_s=0.0
    )
    fake, remaining = _flaky_responses([BAD, OK])

    async def fake_async(method, path, body=None):
        return fake(method, path, body)

    monkeypatch.setattr(client, "request_raw", fake_async)
    with pytest.raises(ServiceError) as excinfo:
        asyncio.run(client.call("GET", "/healthz"))
    assert excinfo.value.status == 400
    assert remaining == [OK]


def test_module_random_state_untouched():
    random.seed(1234)
    expected = random.Random(1234).random()
    delays(0, 4, base_s=0.05, cap_s=2.0)
    ServiceClient(retries=2, backoff_seed=9)
    AsyncServiceClient(retries=2, backoff_seed=9)
    assert random.random() == expected

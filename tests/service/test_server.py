"""End-to-end service tests over a real listening socket.

Each test boots a :class:`ServiceServer` on an ephemeral port in a
background thread (thread executor — same results as the process pool,
no fork cost) and talks real HTTP through the client library.  The
concurrency behaviours are made deterministic with the batcher's
``linger_s`` coalescing window rather than timing races: a linger
longer than the request timeout forces a 504, a linger plus
``max_pending=1`` forces a 429, and a shutdown during the linger
proves drain completes in-flight work.
"""

import contextlib
import http.client
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.engine.records import record_payload
from repro.service.client import ServiceClient, ServiceError
from repro.service.loadgen import LOADGEN_KERNEL
from repro.service.server import ServiceConfig, ServiceServer
from repro.service.protocol import scheme_from_json
from repro.sim.runner import build_traces, evaluate_traces
from repro.workloads.suites import get_workload

SW_JSON = {"kind": "sw_lrf", "entries_per_thread": 3, "split_lrf": True}
EVAL_BODY = {"benchmark": "vectoradd", "scale": 1.0, "scheme": SW_JSON}


@contextlib.contextmanager
def running_server(**overrides):
    defaults = dict(port=0, jobs=2, executor="thread")
    defaults.update(overrides)
    server = ServiceServer(ServiceConfig(**defaults))
    thread = threading.Thread(target=server.run_forever, daemon=True)
    thread.start()
    assert server.started.wait(10), "server did not start"
    assert server._startup_error is None
    try:
        yield server
    finally:
        server.request_shutdown()
        thread.join(10)
        assert not thread.is_alive(), "server did not shut down"


def client_for(server: ServiceServer) -> ServiceClient:
    return ServiceClient(port=server.port)


def test_health_routing_and_errors():
    with running_server() as server:
        client = client_for(server)
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["executor"] == "thread"

        status, payload = client.request_raw("GET", "/nope")
        assert status == 404
        status, payload = client.request_raw("GET", "/v1/evaluate")
        assert status == 405
        status, payload = client.request_raw(
            "POST", "/v1/evaluate", {"benchmark": "vectoradd", "bogus": 1}
        )
        assert status == 400
        assert payload["error"]["type"] == "bad_request"


def test_evaluate_matches_direct_path_and_memoizes():
    with running_server() as server:
        client = client_for(server)
        first = client.evaluate(**EVAL_BODY)
        assert first["served_from"] == "computed"

        spec = get_workload("vectoradd", 1.0)
        traces = build_traces(spec.kernel, spec.warp_inputs)
        direct = record_payload(
            evaluate_traces(traces, scheme_from_json(SW_JSON))
        )
        assert json.dumps(first["record"], sort_keys=True) == json.dumps(
            direct, sort_keys=True
        )

        second = client.evaluate(**EVAL_BODY)
        assert second["served_from"] == "cache"
        strip = lambda r: {  # noqa: E731
            k: v for k, v in r.items() if k != "served_from"
        }
        assert strip(second) == strip(first)


def test_allocate_endpoint():
    with running_server() as server:
        result = client_for(server).allocate(
            kernel=LOADGEN_KERNEL, scheme=SW_JSON
        )
        assert result["summary"]["strands"] >= 1
        assert result["annotations"]


def test_parse_error_is_clean_400():
    with running_server() as server:
        client = client_for(server)
        status, payload = client.request_raw(
            "POST", "/v1/evaluate", {"kernel": "definitely not asm\n"}
        )
        assert status == 400
        assert payload["error"]["type"] == "parse_error"
        assert "Traceback" not in payload["error"]["message"]

        status, payload = client.request_raw("POST", "/v1/evaluate")
        assert status == 400  # invalid JSON body, still a clean error


def test_concurrent_identical_requests_share_one_computation():
    workers = 6
    with running_server(linger_s=0.3) as server:
        clients = [client_for(server) for _ in range(workers)]
        with ThreadPoolExecutor(max_workers=workers) as pool:
            results = list(
                pool.map(
                    lambda c: c.evaluate(**EVAL_BODY), clients
                )
            )
        fingerprints = {r["fingerprint"] for r in results}
        assert len(fingerprints) == 1
        payloads = {
            json.dumps(r["record"], sort_keys=True) for r in results
        }
        assert len(payloads) == 1

        counters = client_for(server).metrics()["counters"]
        assert counters["jobs_executed"] == 1
        # Every request beyond the first was served by in-flight dedup
        # (or, if it raced in after completion, by the result memo).
        shared = counters.get("inflight_dedup_hits", 0) + counters.get(
            "service_memo_hits", 0
        )
        assert shared == workers - 1
        assert counters.get("inflight_dedup_hits", 0) >= 1


def test_timeout_returns_504():
    # Linger longer than the request budget: the wait deterministically
    # expires while the job is still coalescing.
    with running_server(linger_s=0.6, request_timeout_s=0.05) as server:
        with pytest.raises(ServiceError) as excinfo:
            client_for(server).evaluate(**EVAL_BODY)
        assert excinfo.value.status == 504
        assert excinfo.value.error_type == "timeout"
        # The computation survives the waiter: once the linger window
        # closes, the same request is served from the result memo.
        time.sleep(0.8)
        result = client_for(server).evaluate(**EVAL_BODY)
        assert result["served_from"] == "cache"


def test_backpressure_returns_429_with_retry_after():
    with running_server(linger_s=0.8, max_pending=1) as server:
        slow = {}

        def occupy():
            slow["result"] = client_for(server).evaluate(**EVAL_BODY)

        thread = threading.Thread(target=occupy)
        thread.start()
        deadline = time.monotonic() + 5.0
        while server._batcher.pending == 0:
            assert time.monotonic() < deadline, "first job never admitted"
            time.sleep(0.01)

        # A *distinct* job beyond the admission bound is shed.
        connection = http.client.HTTPConnection(
            "127.0.0.1", server.port, timeout=10
        )
        body = json.dumps(
            {"benchmark": "reduction", "scale": 1.0, "scheme": SW_JSON}
        )
        connection.request(
            "POST", "/v1/evaluate", body=body,
            headers={"Content-Type": "application/json"},
        )
        response = connection.getresponse()
        payload = json.loads(response.read())
        assert response.status == 429
        assert response.getheader("Retry-After") == "1"
        assert payload["error"]["retry_after"] == 1.0
        connection.close()

        # An *identical* job rides the in-flight future for free.
        dup = client_for(server).evaluate(**EVAL_BODY)
        assert dup["record"]["dynamic_instructions"] > 0

        thread.join(10)
        assert slow["result"]["served_from"] == "computed"


def test_graceful_drain_completes_inflight_work():
    with running_server(linger_s=5.0) as server:
        holder = {}

        def request():
            holder["result"] = client_for(server).evaluate(**EVAL_BODY)

        thread = threading.Thread(target=request)
        thread.start()
        deadline = time.monotonic() + 5.0
        while server._batcher.pending == 0:
            assert time.monotonic() < deadline, "job never admitted"
            time.sleep(0.01)

        # Shutdown lands while the job is still lingering in the
        # batcher; drain must flush and answer it, not drop it.
        started = time.monotonic()
        server.request_shutdown()
        thread.join(10)
        assert not thread.is_alive()
        assert time.monotonic() - started < 4.0, "drain waited out linger"
        assert holder["result"]["served_from"] == "computed"
        assert holder["result"]["record"]["dynamic_instructions"] > 0


def test_draining_rejects_new_work_with_503():
    with running_server() as server:
        client = client_for(server)
        server.draining = True
        try:
            assert client.healthz()["status"] == "draining"
            status, payload = client.request_raw(
                "POST", "/v1/evaluate", EVAL_BODY
            )
            assert status == 503
            assert payload["error"]["type"] == "draining"
        finally:
            server.draining = False
        assert client.evaluate(**EVAL_BODY)["served_from"] == "computed"


def test_metrics_endpoint_is_schema_3():
    with running_server() as server:
        client = client_for(server)
        client.evaluate(**EVAL_BODY)
        metrics = client.metrics()
        assert metrics["schema"] == 3
        assert set(metrics) == {
            "schema", "stages", "counters", "gauges", "histograms"
        }
        assert metrics["counters"]["evaluate_responses"] == 1
        assert "service_in_flight" in metrics["gauges"]
        assert "execute" in metrics["stages"]
        # Request latency histogram is pre-registered at boot.
        histogram = metrics["histograms"]["http_request_seconds"]
        assert histogram["count"] >= 1
        assert len(histogram["bucket_counts"]) == len(histogram["bounds"]) + 1

        # A schema-2 consumer that only reads the original keys keeps
        # working: the new top-level key is additive.
        legacy_view = {
            k: metrics[k]
            for k in ("schema", "stages", "counters", "gauges")
        }
        assert legacy_view["counters"]["evaluate_responses"] == 1


def test_healthz_reports_uptime_and_schema():
    with running_server() as server:
        health = client_for(server).healthz()
        assert health["status"] == "ok"
        assert health["metrics_schema"] == 3
        assert health["uptime_seconds"] >= 0.0
        assert "version" in health


def test_metrics_prometheus_negotiation():
    with running_server() as server:
        client = client_for(server)
        client.evaluate(**EVAL_BODY)

        connection = http.client.HTTPConnection(
            "127.0.0.1", server.port, timeout=10
        )
        try:
            connection.request(
                "GET", "/metrics", headers={"Accept": "text/plain"}
            )
            response = connection.getresponse()
            body = response.read().decode("utf-8")
            assert response.status == 200
            assert response.getheader("Content-Type").startswith(
                "text/plain; version=0.0.4"
            )
        finally:
            connection.close()
        assert "# TYPE repro_http_request_seconds histogram" in body
        assert 'repro_http_request_seconds_bucket{le="+Inf"}' in body
        assert "repro_evaluate_responses_total 1" in body

        # The query-parameter form negotiates the same representation.
        status, text_payload = _raw_text(
            server.port, "/metrics?format=prometheus"
        )
        assert status == 200
        assert "repro_http_request_seconds_count" in text_payload

        # Default (no Accept header) stays JSON for existing scrapers.
        status, payload = client.request_raw("GET", "/metrics")
        assert status == 200
        assert payload["schema"] == 3


def _raw_text(port, path):
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
    try:
        connection.request("GET", path)
        response = connection.getresponse()
        return response.status, response.read().decode("utf-8")
    finally:
        connection.close()

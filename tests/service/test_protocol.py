"""Protocol and pipeline unit tests: request normalisation, scheme and
warp codecs, dedup fingerprints, and equivalence of the worker-side
compute to the direct engine path."""

import json

import pytest

from repro.alloc.serialize import annotations_from_dict
from repro.engine.records import record_payload
from repro.ir.parser import parse_kernel
from repro.service.loadgen import LOADGEN_KERNEL, build_plan
from repro.service.pipeline import run_service_job
from repro.service.protocol import (
    BadRequest,
    ParseError,
    normalize_request,
    scheme_from_json,
    scheme_to_json,
    warps_from_json,
)
from repro.sim.runner import build_traces, evaluate_traces
from repro.sim.schemes import BEST_SCHEME, Scheme, SchemeKind
from repro.workloads.suites import get_workload

SW_JSON = {"kind": "sw_lrf", "entries_per_thread": 3, "split_lrf": True}


# -- scheme codec ----------------------------------------------------------


def test_scheme_round_trip():
    for scheme in (
        BEST_SCHEME,
        Scheme(SchemeKind.HW_TWO_LEVEL, 5, flush_on_backward_branch=True),
        Scheme(SchemeKind.BASELINE),
    ):
        assert scheme_from_json(scheme_to_json(scheme)) == scheme


@pytest.mark.parametrize(
    "bad",
    [
        {"kind": "warp-drive"},
        {"kind": "sw", "entries_per_thread": "three"},
        {"kind": "sw", "entries_per_thread": 0},
        {"kind": "sw", "split_lrf": "yes"},
        {"kind": "sw", "bogus_field": 1},
        "sw",
    ],
)
def test_scheme_rejects_bad_json(bad):
    with pytest.raises(BadRequest):
        scheme_from_json(bad)


# -- warp codec ------------------------------------------------------------


def test_warps_from_json_builds_inputs():
    inputs = warps_from_json(
        [{"live_in": {"R2": 5, "R1": 2.5}, "max_instructions": 1000}]
    )
    assert len(inputs) == 1
    values = {str(reg): val for reg, val in inputs[0].live_in_values.items()}
    assert values == {"R2": 5, "R1": 2.5}
    assert inputs[0].max_instructions == 1000


@pytest.mark.parametrize(
    "bad",
    [
        [],
        [{"live_in": {"XYZ": 1}}],
        [{"live_in": {"R0": "zero"}}],
        [{"max_instructions": 0}],
        [{"unknown": True}],
        [{}] * 65,
    ],
)
def test_warps_rejects_bad_json(bad):
    with pytest.raises(BadRequest):
        warps_from_json(bad)


# -- normalisation ---------------------------------------------------------


def test_normalize_benchmark_request():
    job = normalize_request(
        "evaluate",
        {"benchmark": "VectorAdd", "scale": 2, "scheme": SW_JSON},
    )
    assert job.op == "evaluate"
    assert job.payload["benchmark"] == "vectoradd"
    assert job.payload["scale"] == 2.0


def test_normalize_fingerprint_dedups_respellings():
    """Two textual spellings of one kernel share a fingerprint; any
    semantic difference splits it."""
    base = {"kernel": LOADGEN_KERNEL, "scheme": SW_JSON}
    respelled = {
        # Extra comments and blank lines; same kernel content.
        "kernel": "# a comment\n" + LOADGEN_KERNEL.replace(
            "entry:", "entry:\n\n"
        ),
        "scheme": dict(SW_JSON),
    }
    fp = normalize_request("evaluate", base).fingerprint
    assert fp == normalize_request("evaluate", respelled).fingerprint
    other_scheme = dict(SW_JSON, entries_per_thread=4)
    assert fp != normalize_request(
        "evaluate", {"kernel": LOADGEN_KERNEL, "scheme": other_scheme}
    ).fingerprint
    assert fp != normalize_request(
        "evaluate",
        {
            "kernel": LOADGEN_KERNEL,
            "warps": [{"live_in": {"R2": 9}}],
            "scheme": SW_JSON,
        },
    ).fingerprint
    assert fp != normalize_request(
        "allocate", {"kernel": LOADGEN_KERNEL, "scheme": SW_JSON}
    ).fingerprint


@pytest.mark.parametrize(
    "body,fault",
    [
        ({}, BadRequest),
        ({"kernel": "x", "benchmark": "vectoradd"}, BadRequest),
        ({"benchmark": "nope"}, BadRequest),
        ({"benchmark": "vectoradd", "scale": -1}, BadRequest),
        ({"benchmark": "vectoradd", "warps": [{}]}, BadRequest),
        ({"kernel": LOADGEN_KERNEL, "scale": 2.0}, BadRequest),
        ({"kernel": "definitely not asm\n"}, ParseError),
        ({"kernel": ".kernel a\nentry:\n exit\n.kernel b\nentry:\n exit\n"},
         ParseError),
        ({"kernel": LOADGEN_KERNEL, "unknown_field": 1}, BadRequest),
    ],
)
def test_normalize_rejects_bad_requests(body, fault):
    with pytest.raises(fault):
        normalize_request("evaluate", body)


def test_allocate_requires_software_scheme():
    with pytest.raises(BadRequest):
        normalize_request(
            "allocate",
            {"kernel": LOADGEN_KERNEL, "scheme": {"kind": "hw"}},
        )
    with pytest.raises(BadRequest):
        normalize_request(
            "allocate",
            {"kernel": LOADGEN_KERNEL, "warps": [{}], "scheme": SW_JSON},
        )


# -- pipeline equivalence --------------------------------------------------


def test_evaluate_job_matches_direct_engine_path():
    job = normalize_request(
        "evaluate",
        {"benchmark": "vectoradd", "scale": 1.0, "scheme": SW_JSON},
    )
    result = run_service_job(job.payload)
    spec = get_workload("vectoradd", 1.0)
    traces = build_traces(spec.kernel, spec.warp_inputs)
    direct = record_payload(
        evaluate_traces(traces, scheme_from_json(SW_JSON))
    )
    assert json.dumps(result["record"], sort_keys=True) == json.dumps(
        direct, sort_keys=True
    )


def test_evaluate_text_kernel_job():
    job = normalize_request(
        "evaluate",
        {
            "kernel": LOADGEN_KERNEL,
            "warps": [{"live_in": {"R1": 2, "R2": 5}}],
            "scheme": SW_JSON,
        },
    )
    result = run_service_job(job.payload)
    assert result["kernel"] == "svc_saxpy"
    assert result["record"]["dynamic_instructions"] > 0


def test_allocate_job_annotations_apply_cleanly():
    job = normalize_request(
        "allocate", {"kernel": LOADGEN_KERNEL, "scheme": SW_JSON}
    )
    result = run_service_job(job.payload)
    assert result["summary"]["strands"] >= 1
    assert result["strands"]
    # The returned annotation document round-trips onto a fresh parse
    # of the same kernel — the 'ship it next to the binary' contract.
    kernel = parse_kernel(LOADGEN_KERNEL)
    annotations_from_dict(kernel, result["annotations"])


def test_loadgen_plan_is_mixed_and_deterministic():
    plan = build_plan(96, 8)
    assert len(plan) == 96
    assert plan == build_plan(96, 8)
    ops = {spec["op"] for spec in plan}
    assert ops == {"evaluate", "allocate"}
    assert any(spec["expect"] == 400 for spec in plan)
    assert sum(1 for spec in plan if spec["expect"] == 200) > 80
    # The seed block is identical so in-flight dedup has a target.
    assert plan[0] == plan[1]

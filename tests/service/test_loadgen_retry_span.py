"""A retried loadgen request is ONE span with a retry count.

The stub server sheds the first request with a 503 (plus
``retry_after``), then serves; the client retry loop runs *inside* the
``loadgen.request`` span, so the trace shows a single logical request
with ``retries >= 1`` — never two spans for one plan entry.
"""

import asyncio
import json

import pytest

from repro.obs.tracer import TRACER
from repro.service.client import AsyncServiceClient
from repro.service.loadgen import _run_phase


@pytest.fixture(autouse=True)
def clean_tracer():
    TRACER.reset()
    yield
    TRACER.reset()


async def _stub_handler(hits, reader, writer):
    """Minimal HTTP/1.1 keep-alive server: 503 first, 200 after."""
    try:
        while True:
            request_line = await reader.readline()
            if not request_line or request_line in (b"\r\n", b"\n"):
                return
            headers = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            length = int(headers.get("content-length", "0"))
            if length:
                await reader.readexactly(length)
            hits["count"] += 1
            if hits["count"] == 1:
                status, reason = 503, "Service Unavailable"
                body = json.dumps({
                    "error": {
                        "type": "overloaded",
                        "message": "shedding",
                        "retry_after": 0.01,
                    }
                }).encode("utf-8")
            else:
                status, reason = 200, "OK"
                body = json.dumps({"ok": True}).encode("utf-8")
            writer.write(
                (
                    f"HTTP/1.1 {status} {reason}\r\n"
                    "Content-Type: application/json\r\n"
                    f"Content-Length: {len(body)}\r\n"
                    "\r\n"
                ).encode("latin-1")
                + body
            )
            await writer.drain()
    except (ConnectionError, asyncio.IncompleteReadError):
        return


def test_retried_request_is_one_span_with_retry_count():
    TRACER.configure(enabled=True)

    async def scenario():
        hits = {"count": 0}
        server = await asyncio.start_server(
            lambda r, w: _stub_handler(hits, r, w), "127.0.0.1", 0
        )
        port = server.sockets[0].getsockname()[1]
        client = AsyncServiceClient(
            "127.0.0.1", port, timeout=5.0,
            retries=2, backoff_base_s=0.001, backoff_cap_s=0.002,
        )
        try:
            plan = [{"op": "allocate", "body": {"probe": 1}}]
            results, _wall = await _run_phase([client], plan)
        finally:
            await client.close()
            server.close()
            await server.wait_closed()
        return hits, results

    hits, results = asyncio.run(scenario())
    TRACER.enabled = False

    assert hits["count"] == 2  # one shed, one served
    assert results[0]["status"] == 200
    assert results[0]["retries"] == 1

    spans = [s for s in TRACER.drain() if s.name == "loadgen.request"]
    assert len(spans) == 1, "a retried request must not split into spans"
    assert spans[0].attributes["status"] == 200
    assert spans[0].attributes["retries"] == 1


def test_unretried_request_records_zero_retries():
    TRACER.configure(enabled=True)

    async def scenario():
        hits = {"count": 1}  # pre-bump: the stub serves 200 immediately
        server = await asyncio.start_server(
            lambda r, w: _stub_handler(hits, r, w), "127.0.0.1", 0
        )
        port = server.sockets[0].getsockname()[1]
        client = AsyncServiceClient("127.0.0.1", port, retries=2)
        try:
            results, _wall = await _run_phase(
                [client], [{"op": "allocate", "body": {}}]
            )
        finally:
            await client.close()
            server.close()
            await server.wait_closed()
        return results

    results = asyncio.run(scenario())
    TRACER.enabled = False
    assert results[0]["status"] == 200
    assert results[0]["retries"] == 0
    spans = [s for s in TRACER.drain() if s.name == "loadgen.request"]
    assert len(spans) == 1
    assert spans[0].attributes["retries"] == 0

"""The shared BenchReport schema: metric entries, the bench section,
the environment fingerprint, and the canonical writer."""

import json

import pytest

from repro.bench import (
    BENCH_SECTION_SCHEMA,
    CiHalfWidthRule,
    bench_section,
    environment_fingerprint,
    measure,
    metric_entry,
    metric_from_samples,
    write_report,
)


def test_environment_fingerprint_keys():
    env = environment_fingerprint()
    for key in ("python", "implementation", "platform", "machine",
                "cpu_count"):
        assert key in env, key
    assert "governor" in env  # may be None off Linux
    json.dumps(env)  # must be JSON-serialisable


def test_metric_from_samples_fields():
    entry = metric_from_samples(
        "speedup", [3.0, 4.0, 5.0], unit="x",
        direction="higher", comparable=True,
    )
    assert entry["median"] == 4.0
    assert entry["samples"] == [3.0, 4.0, 5.0]
    assert entry["ci"] == [3.0, 5.0]  # min/max envelope without a rule
    assert entry["repeats"] == 3
    assert entry["stop_reason"] == "fixed_repeats"
    assert entry["comparable"] is True
    assert entry["direction"] == "higher"


def test_metric_from_samples_validates():
    with pytest.raises(ValueError):
        metric_from_samples("x", [1.0], unit="s", direction="sideways")
    with pytest.raises(ValueError):
        metric_from_samples("x", [], unit="s")


def test_measure_runs_rule_and_builds_entry():
    rule = CiHalfWidthRule(min_repeats=3, max_repeats=10, target=0.05)
    samples, entry = measure(
        lambda i: 2.0, rule, name="t", unit="s", direction="lower"
    )
    assert samples == [2.0, 2.0, 2.0]
    assert entry["stop_reason"] == "ci_half_width"
    assert entry["repeats"] == 3
    assert entry["ci"][0] <= entry["median"] <= entry["ci"][1]


def test_metric_entry_legacy_bare_number():
    entry = metric_entry(4.2)
    assert entry["samples"] == [4.2]
    assert entry["median"] == 4.2
    assert entry["ci"] == [4.2, 4.2]
    assert entry["stop_reason"] == "legacy"
    assert entry["comparable"] is False


def test_metric_entry_legacy_dict_missing_samples():
    entry = metric_entry({"median": 3.0, "unit": "x"})
    assert entry["samples"] == [3.0]
    assert entry["ci"] == [3.0, 3.0]
    assert entry["stop_reason"] == "legacy"


def test_metric_entry_passthrough_keeps_modern_fields():
    modern = metric_from_samples(
        "m", [1.0, 2.0], unit="s", direction="lower"
    )
    assert metric_entry(modern) == modern


def test_bench_section_layout(tmp_path):
    rule = CiHalfWidthRule()
    metrics = {"m": metric_from_samples("m", [1.0], unit="s")}
    section = bench_section("loadgen", metrics, rule=rule)
    assert section["bench_schema"] == BENCH_SECTION_SCHEMA
    assert section["tool"] == "loadgen"
    assert section["rule"]["rule"] == "ci"
    assert section["metrics"] is metrics
    assert "python" in section["env"]

    path = write_report(tmp_path / "sub" / "BENCH_x.json",
                        {"schema": 1, "bench": section})
    text = path.read_text()
    assert text.endswith("\n")
    assert json.loads(text)["bench"]["tool"] == "loadgen"

"""``repro bench diff``: gating behaviour on synthetic reports built
to sit on both sides of the significance boundary."""

import json

from repro.bench import diff_reports, load_metrics, run_diff
from repro.bench.report import metric_from_samples


def _report(path, metrics):
    path.write_text(json.dumps({
        "schema": 4,
        "bench": {
            "bench_schema": 1,
            "tool": "test",
            "env": {},
            "metrics": metrics,
        },
    }) + "\n")
    return path


def _ratio(samples):
    return metric_from_samples(
        "m", samples, unit="x", direction="higher", comparable=True
    )


def test_significant_regression_fails_gate(tmp_path):
    old = _report(tmp_path / "old.json",
                  {"speedup": _ratio([4.0, 4.1, 4.2])})
    new = _report(tmp_path / "new.json",
                  {"speedup": _ratio([2.0, 2.1, 2.2])})
    code, text, rows = run_diff(old, new, gate_pct=5.0)
    assert code == 1
    assert rows[0]["regression"] is True
    assert "FAIL" in text and "speedup" in text


def test_improvement_and_selfdiff_pass(tmp_path):
    old = _report(tmp_path / "old.json",
                  {"speedup": _ratio([2.0, 2.1, 2.2])})
    new = _report(tmp_path / "new.json",
                  {"speedup": _ratio([4.0, 4.1, 4.2])})
    code, text, rows = run_diff(old, new, gate_pct=5.0)
    assert code == 0
    assert "improved" in text

    code, text, _ = run_diff(old, old, gate_pct=5.0)
    assert code == 0
    assert "OK" in text


def test_overlapping_cis_are_noise_not_regression(tmp_path):
    # 10% worse but the CIs overlap: insignificant, must pass.
    old = _report(tmp_path / "old.json",
                  {"speedup": _ratio([3.5, 4.0, 4.5])})
    new = _report(tmp_path / "new.json",
                  {"speedup": _ratio([3.2, 3.6, 4.1])})
    code, text, rows = run_diff(old, new, gate_pct=5.0)
    assert code == 0
    assert rows[0]["significant"] is False
    assert "noise" in text


def test_within_gate_significant_drop_passes(tmp_path):
    # Disjoint CIs but only ~3% worse: inside a 5% gate.
    old = _report(tmp_path / "old.json",
                  {"speedup": _ratio([4.00, 4.01, 4.02])})
    new = _report(tmp_path / "new.json",
                  {"speedup": _ratio([3.88, 3.89, 3.90])})
    code, _, rows = run_diff(old, new, gate_pct=5.0)
    assert code == 0
    assert rows[0]["significant"] is True
    assert rows[0]["regression"] is False
    # The same delta fails a tighter gate.
    code, _, _ = run_diff(old, new, gate_pct=1.0)
    assert code == 1


def test_noncomparable_timing_never_gates(tmp_path):
    timing = metric_from_samples(
        "t", [1.0, 1.1], unit="s", direction="lower", comparable=False
    )
    worse = metric_from_samples(
        "t", [9.0, 9.1], unit="s", direction="lower", comparable=False
    )
    old = _report(tmp_path / "old.json", {"wall_s": timing})
    new = _report(tmp_path / "new.json", {"wall_s": worse})
    code, text, rows = run_diff(old, new, gate_pct=5.0)
    assert code == 0
    assert rows[0]["regression"] is False
    assert "info" in text


def test_lower_is_better_direction(tmp_path):
    def low(samples):
        return metric_from_samples(
            "m", samples, unit="x", direction="lower", comparable=True
        )

    old = _report(tmp_path / "old.json", {"miss_rate": low([1.0, 1.1])})
    new = _report(tmp_path / "new.json", {"miss_rate": low([2.0, 2.1])})
    code, _, rows = run_diff(old, new, gate_pct=5.0)
    assert code == 1
    assert rows[0]["regression"] is True


def test_degenerate_point_estimates_compare_exactly():
    old = {"r": {"samples": [2.0], "median": 2.0, "ci": [2.0, 2.0],
                 "repeats": 1, "stop_reason": "legacy", "unit": "x",
                 "direction": "higher", "comparable": True}}
    new = {"r": {"samples": [1.0], "median": 1.0, "ci": [1.0, 1.0],
                 "repeats": 1, "stop_reason": "legacy", "unit": "x",
                 "direction": "higher", "comparable": True}}
    rows = diff_reports(old, new, gate_pct=5.0)
    assert rows[0]["regression"] is True
    assert diff_reports(old, old)[0]["significant"] is False


def test_legacy_file_flattens_by_suffix(tmp_path):
    legacy = tmp_path / "legacy.json"
    legacy.write_text(json.dumps({
        "schema": 3,
        "software": {"speedup": 4.0, "scalar_s": 1.2, "configs": 18},
        "allocation": {"batch_s": 0.5, "dedup_rate": 0.9},
    }))
    metrics = load_metrics(legacy)
    assert metrics["software.speedup"]["comparable"] is True
    assert metrics["software.speedup"]["direction"] == "higher"
    assert metrics["software.scalar_s"]["comparable"] is False
    assert metrics["software.scalar_s"]["direction"] == "lower"
    assert metrics["allocation.dedup_rate"]["comparable"] is True
    assert "software.configs" not in metrics  # counts are not metrics
    code, _, _ = run_diff(legacy, legacy)
    assert code == 0


def test_cli_bench_diff_exit_codes(tmp_path, capsys):
    from repro.cli import main

    old = _report(tmp_path / "old.json",
                  {"speedup": _ratio([4.0, 4.1, 4.2])})
    new = _report(tmp_path / "new.json",
                  {"speedup": _ratio([2.0, 2.1, 2.2])})
    assert main(["bench", "diff", str(old), str(new)]) == 1
    assert "FAIL" in capsys.readouterr().out
    assert main(["bench", "diff", str(old), str(old), "--gate", "1"]) == 0
    assert "OK" in capsys.readouterr().out


def test_unreadable_or_disjoint_reports_exit_2(tmp_path):
    missing = tmp_path / "nope.json"
    good = _report(tmp_path / "good.json", {"speedup": _ratio([1.0])})
    assert run_diff(missing, good)[0] == 2

    bad = tmp_path / "bad.json"
    bad.write_text("[1, 2]")
    assert run_diff(bad, good)[0] == 2

    other = _report(tmp_path / "other.json", {"latency": _ratio([1.0])})
    code, text, _ = run_diff(good, other)
    assert code == 2
    assert "no shared metrics" in text

"""Property-based tests (hypothesis) on the stopping rules.

The invariants every rule must hold:

* **Termination** — ``run_repeater`` finishes within ``max_repeats``
  calls for *any* finite sample stream.
* **Determinism** — checking the same samples with the same seed gives
  the same decision and the same interval (the bootstrap RNG is keyed
  on ``(seed, len(samples))``, never global state).
* **Coverage** — the CI rule's reported interval always contains the
  sample median (it is clamped to be a valid covering interval for the
  point estimate).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bench import (
    STOP_MAX_REPEATS,
    CiHalfWidthRule,
    HdiWidthRule,
    KsStabilityRule,
    make_rule,
    run_repeater,
)

finite = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-1e9, max_value=1e9
)
streams = st.lists(finite, min_size=1, max_size=40)

RULE_CLASSES = (CiHalfWidthRule, HdiWidthRule, KsStabilityRule)


def _sampler(values):
    return lambda i: values[i % len(values)]


@pytest.mark.parametrize("rule_cls", RULE_CLASSES)
@settings(max_examples=40, deadline=None)
@given(values=streams, seed=st.integers(0, 2**16))
def test_repeater_terminates_within_max_repeats(rule_cls, values, seed):
    rule = rule_cls(min_repeats=1, max_repeats=12, target=0.05, seed=seed)
    samples, reason = run_repeater(_sampler(values), rule)
    assert 1 <= len(samples) <= rule.max_repeats
    assert isinstance(reason, str) and reason


@pytest.mark.parametrize("rule_cls", RULE_CLASSES)
@settings(max_examples=40, deadline=None)
@given(values=st.lists(finite, min_size=3, max_size=25),
       seed=st.integers(0, 2**16))
def test_rule_is_deterministic_under_fixed_seed(rule_cls, values, seed):
    a = rule_cls(min_repeats=1, max_repeats=30, seed=seed)
    b = rule_cls(min_repeats=1, max_repeats=30, seed=seed)
    assert a.check(values) == b.check(values)
    assert a.interval(values) == b.interval(values)
    # Checking twice on the same instance must not drift either.
    assert a.check(values) == b.check(values)


@settings(max_examples=60, deadline=None)
@given(values=st.lists(finite, min_size=1, max_size=25),
       seed=st.integers(0, 2**16))
def test_ci_interval_covers_sample_median(values, seed):
    import statistics

    rule = CiHalfWidthRule(min_repeats=1, seed=seed)
    lo, hi = rule.interval(values)
    median = statistics.median(values)
    assert lo <= median <= hi


@settings(max_examples=40, deadline=None)
@given(values=st.lists(finite, min_size=2, max_size=25))
def test_hdi_interval_is_within_sample_envelope(values):
    rule = HdiWidthRule(min_repeats=1)
    lo, hi = rule.interval(values)
    assert min(values) <= lo <= hi <= max(values)


def test_constant_stream_stops_at_min_repeats():
    for name, expected in (
        ("ci", "ci_half_width"),
        ("hdi", "hdi_width"),
        ("ks", "ks_stable"),
    ):
        rule = make_rule(name, min_repeats=2, max_repeats=10,
                         target=0.05, seed=0)
        samples, reason = run_repeater(lambda i: 7.0, rule)
        assert reason == expected
        assert len(samples) == 2


def test_noisy_stream_hits_max_repeats():
    # Alternating far-apart values never satisfy a 1% CI target.
    rule = CiHalfWidthRule(min_repeats=2, max_repeats=6, target=0.01)
    samples, reason = run_repeater(
        _sampler([1.0, 100.0, 3.0, 80.0]), rule
    )
    assert reason == STOP_MAX_REPEATS
    assert len(samples) == rule.max_repeats


def test_min_repeats_gates_every_rule():
    rule = make_rule("ci", min_repeats=5, max_repeats=10,
                     target=10.0, seed=0)
    assert rule.check([1.0, 1.0]) is None
    assert rule.check([1.0] * 5) == "ci_half_width"


def test_ks_statistic_bounds():
    assert KsStabilityRule.statistic([1.0, 2.0], [1.0, 2.0]) == 0.0
    assert KsStabilityRule.statistic([0.0, 0.0], [5.0, 5.0]) == 1.0


def test_make_rule_rejects_unknown_name_and_bad_knobs():
    with pytest.raises(ValueError):
        make_rule("bogus")
    with pytest.raises(ValueError):
        make_rule("ci", min_repeats=0, max_repeats=5, target=0.05, seed=0)
    with pytest.raises(ValueError):
        make_rule("ci", min_repeats=5, max_repeats=2, target=0.05, seed=0)
    with pytest.raises(ValueError):
        make_rule("hdi", min_repeats=1, max_repeats=2, target=0.0, seed=0)


def test_describe_round_trips_knobs():
    rule = make_rule("ks", min_repeats=2, max_repeats=7,
                     target=0.25, seed=3)
    assert rule.describe() == {
        "rule": "ks",
        "min_repeats": 2,
        "max_repeats": 7,
        "target": 0.25,
        "seed": 3,
    }

"""Unit tests for the experiment engine: hashing, records, cache,
memoization, metrics, and serial/parallel prefetch determinism."""

import json
import os
import pickle

import pytest

from repro.engine import ExperimentEngine
from repro.engine.cache import DiskCache
from repro.engine.hashing import (
    dataclass_fingerprint,
    digest,
    traceset_fingerprint,
    warp_inputs_fingerprint,
)
from repro.engine.metrics import RunMetrics
from repro.engine.records import (
    evaluation_from_payload,
    record_key,
    record_payload,
    trace_payload_is_valid,
    traceset_from_payload,
    traceset_to_payload,
)
from repro.sim.runner import build_traces, evaluate_traces
from repro.sim.schemes import BEST_SCHEME, Scheme, SchemeKind
from repro.workloads.suites import get_workload

SW = Scheme(SchemeKind.SW_THREE_LEVEL, 3, split_lrf=True)
HW = Scheme(SchemeKind.HW_TWO_LEVEL, 3)


@pytest.fixture(scope="module")
def spec():
    return get_workload("vectoradd")


@pytest.fixture(scope="module")
def traces(spec):
    return build_traces(spec.kernel, spec.warp_inputs)


# -- hashing ---------------------------------------------------------------


def test_digest_is_order_sensitive():
    assert digest("a", "b") != digest("b", "a")
    assert digest("a", "b") != digest("ab")


def test_kernel_fingerprint_ignores_annotations(spec):
    before = spec.kernel.content_fingerprint()
    clone = spec.kernel.clone()
    for _, instruction in clone.instructions():
        instruction.ensure_default_annotations()
        instruction.ends_strand = True
    assert clone.content_fingerprint() == before


def test_traceset_fingerprint_is_stable(spec, traces):
    again = build_traces(spec.kernel, spec.warp_inputs)
    assert traceset_fingerprint(traces) == traceset_fingerprint(again)
    other_spec = get_workload("scalarprod")
    other = build_traces(other_spec.kernel, other_spec.warp_inputs)
    assert traceset_fingerprint(traces) != traceset_fingerprint(other)


def test_warp_inputs_fingerprint_distinguishes_inputs(spec):
    fp = warp_inputs_fingerprint(spec.warp_inputs)
    assert fp == warp_inputs_fingerprint(spec.warp_inputs)
    assert fp != warp_inputs_fingerprint(spec.warp_inputs[:1])


def test_scheme_fingerprint_distinguishes_schemes():
    assert dataclass_fingerprint(SW) != dataclass_fingerprint(HW)
    assert dataclass_fingerprint(SW) == dataclass_fingerprint(
        Scheme(SchemeKind.SW_THREE_LEVEL, 3, split_lrf=True)
    )


# -- record round-trip -----------------------------------------------------


def test_record_payload_round_trip(traces):
    evaluation = evaluate_traces(traces, SW)
    payload = record_payload(evaluation)
    json.dumps(payload)  # must be JSON-serializable
    restored = evaluation_from_payload(payload, SW)
    assert restored.counters == evaluation.counters
    assert restored.baseline == evaluation.baseline
    assert restored.dynamic_instructions == evaluation.dynamic_instructions
    assert restored.kernel_name == evaluation.kernel_name
    assert restored.allocation is None


def test_traceset_payload_round_trip(spec, traces):
    payload = traceset_to_payload(traces)
    blob = pickle.loads(pickle.dumps(payload))
    assert trace_payload_is_valid(blob, spec.kernel)
    restored = traceset_from_payload(spec.kernel, blob)
    assert traceset_fingerprint(restored) == traceset_fingerprint(traces)
    # A different kernel rejects the payload instead of mislabelling it.
    other = get_workload("scalarprod").kernel
    assert not trace_payload_is_valid(blob, other)


# -- disk cache ------------------------------------------------------------


def test_disk_cache_json_round_trip(tmp_path):
    cache = DiskCache(str(tmp_path))
    assert cache.get_json("records", "k1") is None
    cache.put_json("records", "k1", {"a": 1})
    assert cache.get_json("records", "k1") == {"a": 1}


def test_disk_cache_max_bytes_prunes_oldest(tmp_path):
    cache = DiskCache(str(tmp_path), max_bytes=400)
    for index in range(8):
        cache.put_json("records", f"key{index:02d}", {"v": "x" * 80})
        # Backdate in insertion order so "oldest" is unambiguous even
        # on filesystems with coarse mtimes.
        path = cache._path("records", f"key{index:02d}", "json")
        os.utime(path, (1_000_000 + index, 1_000_000 + index))
        cache._prune()
    total = sum(
        os.path.getsize(os.path.join(root, name))
        for root, _, names in os.walk(tmp_path)
        for name in names
    )
    assert total <= 400
    # The newest entry always survives; the oldest were evicted.
    assert cache.get_json("records", "key07") == {"v": "x" * 80}
    assert cache.get_json("records", "key00") is None


def test_disk_cache_max_bytes_validation(tmp_path):
    with pytest.raises(ValueError):
        DiskCache(str(tmp_path), max_bytes=0)
    # Uncapped cache never prunes.
    cache = DiskCache(str(tmp_path))
    cache.put_json("records", "k", {"a": 1})
    assert cache.get_json("records", "k") == {"a": 1}


def test_disk_cache_corrupt_entry_is_a_miss(tmp_path):
    cache = DiskCache(str(tmp_path))
    cache.put_json("records", "deadbeef", {"a": 1})
    path = tmp_path / "records" / "de" / "deadbeef.json"
    path.write_text("{not json")
    assert cache.get_json("records", "deadbeef") is None
    assert not path.exists()  # corrupt entry removed
    cache.put_json("records", "deadbeef", {"a": 2})
    assert cache.get_json("records", "deadbeef") == {"a": 2}


# -- engine memoization ----------------------------------------------------


def test_engine_evaluate_memoizes(traces):
    engine = ExperimentEngine()
    first = engine.evaluate(traces, SW)
    second = engine.evaluate(traces, SW)
    assert engine.metrics.counters["record_misses"] == 1
    assert engine.metrics.counters["record_memo_hits"] == 1
    assert first.counters == second.counters
    plain = evaluate_traces(traces, SW)
    assert first.counters == plain.counters
    assert first.baseline == plain.baseline


def test_engine_evaluate_batch_matches_per_scheme(traces):
    schemes = [
        Scheme(SchemeKind.SW_TWO_LEVEL, 2),
        SW,
        HW,
        Scheme(SchemeKind.BASELINE),
    ]
    batched = ExperimentEngine()
    batch = batched.evaluate_batch(traces, schemes)
    serial = ExperimentEngine()
    singles = [serial.evaluate(traces, s) for s in schemes]
    for got, want in zip(batch, singles):
        assert got.counters == want.counters
        assert got.baseline == want.baseline
        assert got.dynamic_instructions == want.dynamic_instructions
    # The batch filled the record memo; re-evaluating any scheme hits.
    before = dict(batched.metrics.counters)
    batched.evaluate(traces, schemes[0])
    assert (
        batched.metrics.counters["record_memo_hits"]
        > before.get("record_memo_hits", 0)
    )


def test_engine_disk_cache_survives_restart(tmp_path, traces):
    first = ExperimentEngine(cache_dir=str(tmp_path))
    cold = first.evaluate(traces, SW)
    assert first.metrics.counters["record_misses"] == 1

    second = ExperimentEngine(cache_dir=str(tmp_path))
    warm = second.evaluate(traces, SW)
    assert second.metrics.counters.get("record_misses", 0) == 0
    assert second.metrics.counters["record_disk_hits"] == 1
    assert warm.counters == cold.counters
    assert warm.baseline == cold.baseline


def test_engine_build_traces_cache(tmp_path, spec, traces):
    engine = ExperimentEngine(cache_dir=str(tmp_path))
    cold = engine.build_traces(spec.kernel, spec.warp_inputs)
    assert engine.metrics.counters["trace_cache_misses"] == 1
    warm = engine.build_traces(spec.kernel, spec.warp_inputs)
    assert engine.metrics.counters["trace_cache_hits"] == 1
    assert traceset_fingerprint(cold) == traceset_fingerprint(traces)
    assert traceset_fingerprint(warm) == traceset_fingerprint(traces)


def test_memo_study(tmp_path):
    engine = ExperimentEngine(cache_dir=str(tmp_path))
    calls = []

    def compute():
        calls.append(1)
        return {"x": 1.5}

    assert engine.memo_study(("t", "a"), compute) == {"x": 1.5}
    assert engine.memo_study(("t", "a"), compute) == {"x": 1.5}
    assert len(calls) == 1
    # Fresh engine, same cache dir: served from disk.
    other = ExperimentEngine(cache_dir=str(tmp_path))
    assert other.memo_study(("t", "a"), compute) == {"x": 1.5}
    assert len(calls) == 1
    # Different key computes.
    assert other.memo_study(("t", "b"), compute) == {"x": 1.5}
    assert len(calls) == 2


# -- prefetch determinism --------------------------------------------------


def _record_snapshot(engine, items, schemes):
    return {
        record_key(traces, scheme): engine.evaluate(traces, scheme).counters
        for _, traces in items
        for scheme in schemes
    }


def test_prefetch_serial_vs_parallel_identical(spec, traces):
    items = [(spec, traces)]
    schemes = [SW, HW, BEST_SCHEME]

    serial = ExperimentEngine(jobs=1)
    serial.prefetch(items, schemes)
    parallel = ExperimentEngine(jobs=2)
    parallel.prefetch(items, schemes)

    assert _record_snapshot(serial, items, schemes) == _record_snapshot(
        parallel, items, schemes
    )


def test_prefetch_falls_back_inline_for_unknown_workloads(spec, traces):
    class Anon:
        name = "not-a-registry-workload"

    engine = ExperimentEngine(jobs=2)
    engine.prefetch([(Anon(), traces)], [HW])
    assert engine.metrics.counters.get("jobs_submitted", 0) == 0
    evaluation = engine.evaluate(traces, HW)
    assert evaluation.counters == evaluate_traces(traces, HW).counters


# -- metrics ---------------------------------------------------------------


def test_metrics_schema(tmp_path):
    metrics = RunMetrics()
    with metrics.stage("traces"):
        pass
    metrics.count("record_memo_hits", 3)
    metrics.count("record_misses")
    metrics.gauge("queue_depth", 4.0)
    data = metrics.to_dict()
    assert data["schema"] == 3
    assert set(data) == {
        "schema", "stages", "counters", "gauges", "histograms"
    }
    assert "traces" in data["stages"]
    assert data["counters"] == {"record_memo_hits": 3, "record_misses": 1}
    assert data["gauges"] == {"queue_depth": 4.0}
    # Every stage also feeds a latency histogram (schema 3).
    assert "stage_traces_seconds" in data["histograms"]
    path = tmp_path / "metrics.json"
    metrics.write(str(path))
    assert json.loads(path.read_text()) == data
    assert "hit" in metrics.summary()

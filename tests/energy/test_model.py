"""Unit tests for the energy model (Tables 3-4) and its derived scaling."""

import pytest

from repro.energy import tables
from repro.energy.model import EnergyModel, EnergyModelError
from repro.levels import Level


class TestTables:
    def test_table3_values(self):
        assert tables.ORF_ENERGY_PJ[1] == (0.7, 2.0)
        assert tables.ORF_ENERGY_PJ[3] == (1.2, 4.4)
        assert tables.ORF_ENERGY_PJ[5] == (2.0, 6.0)
        assert tables.ORF_ENERGY_PJ[8] == (3.4, 10.9)

    def test_table4_values(self):
        assert tables.MRF_READ_PJ == 8.0
        assert tables.MRF_WRITE_PJ == 11.0
        assert tables.LRF_READ_PJ == 0.7
        assert tables.LRF_WRITE_PJ == 2.0
        assert tables.WIRE_PJ_PER_MM_32B == 1.9

    def test_warp_scaling_constant(self):
        # 32 threads x 32 bits = 8 entries of 128 bits per warp access.
        assert tables.WARP_ENTRY_ACCESSES == 8


class TestAccessEnergy:
    def test_mrf_read_warp_level(self):
        model = EnergyModel(orf_entries=3)
        assert model.access_energy(Level.MRF, True) == pytest.approx(
            8 * 8.0
        )

    def test_orf_size_dependence(self):
        small = EnergyModel(orf_entries=1)
        large = EnergyModel(orf_entries=8)
        assert small.access_energy(Level.ORF, True) == pytest.approx(
            8 * 0.7
        )
        assert large.access_energy(Level.ORF, True) == pytest.approx(
            8 * 3.4
        )

    def test_lrf_matches_one_entry_orf(self):
        model = EnergyModel(orf_entries=1)
        assert model.access_energy(Level.LRF, True) == pytest.approx(
            model.access_energy(Level.ORF, True)
        )

    def test_invalid_orf_size_rejected(self):
        with pytest.raises(EnergyModelError):
            EnergyModel(orf_entries=9)
        with pytest.raises(EnergyModelError):
            EnergyModel(orf_entries=0)


class TestWireEnergy:
    def test_distances(self):
        model = EnergyModel(orf_entries=3)
        assert model.wire_distance_mm(Level.MRF, False) == 1.0
        assert model.wire_distance_mm(Level.ORF, False) == 0.2
        assert model.wire_distance_mm(Level.LRF, False) == 0.05
        assert model.wire_distance_mm(Level.MRF, True) == 1.0
        assert model.wire_distance_mm(Level.ORF, True) == 0.4

    def test_lrf_unreachable_from_shared(self):
        model = EnergyModel(orf_entries=3)
        with pytest.raises(EnergyModelError):
            model.wire_distance_mm(Level.LRF, True)

    def test_wire_energy_per_warp(self):
        model = EnergyModel(orf_entries=3)
        # 32 lanes x 1.9 pJ/mm x 1 mm.
        assert model.wire_energy(Level.MRF, False) == pytest.approx(
            32 * 1.9
        )

    def test_paper_wire_ratios(self):
        """Section 5.2: private-path wire energy is 5x lower for the
        ORF and 20x lower for the LRF than for the MRF."""
        model = EnergyModel(orf_entries=3)
        mrf = model.wire_energy(Level.MRF, False)
        assert mrf / model.wire_energy(Level.ORF, False) == pytest.approx(5)
        assert mrf / model.wire_energy(Level.LRF, False) == pytest.approx(20)

    def test_split_lrf_longer_wire(self):
        unified = EnergyModel(orf_entries=3, split_lrf=False)
        split = EnergyModel(orf_entries=3, split_lrf=True)
        assert split.wire_energy(Level.LRF, False) > unified.wire_energy(
            Level.LRF, False
        )


class TestCombined:
    def test_hierarchy_ordering(self):
        model = EnergyModel(orf_entries=3)
        assert (
            model.read_energy(Level.LRF)
            < model.read_energy(Level.ORF)
            < model.read_energy(Level.MRF)
        )
        assert (
            model.write_energy(Level.LRF)
            < model.write_energy(Level.ORF)
            < model.write_energy(Level.MRF)
        )

    def test_with_orf_entries(self):
        model = EnergyModel(orf_entries=3, split_lrf=True)
        resized = model.with_orf_entries(5)
        assert resized.orf_entries == 5
        assert resized.split_lrf
        assert model.orf_entries == 3

    def test_shared_read_costs_more_wire(self):
        model = EnergyModel(orf_entries=3)
        assert model.read_energy(Level.ORF, True) > model.read_energy(
            Level.ORF, False
        )

"""Unit tests for energy accounting, encoding overhead, and chip power."""

import pytest

from repro.energy.accounting import (
    compute_energy,
    energy_savings,
    normalized_energy,
)
from repro.energy.chip_power import chip_power_savings
from repro.energy.encoding import encoding_overhead
from repro.energy.model import EnergyModel
from repro.hierarchy.counters import AccessCounters
from repro.levels import Level

MODEL = EnergyModel(orf_entries=3)


def _baseline(reads=10, writes=5):
    counters = AccessCounters()
    counters.add_read(Level.MRF, count=reads)
    counters.add_write(Level.MRF, count=writes)
    return counters


class TestComputeEnergy:
    def test_breakdown_components(self):
        counters = AccessCounters()
        counters.add_read(Level.MRF, count=2)
        breakdown = compute_energy(counters, MODEL)
        assert breakdown.access_pj[Level.MRF] == pytest.approx(
            2 * MODEL.access_energy(Level.MRF, True)
        )
        assert breakdown.wire_pj[Level.MRF] == pytest.approx(
            2 * MODEL.wire_energy(Level.MRF, False)
        )
        assert breakdown.access_pj[Level.ORF] == 0.0

    def test_total(self):
        counters = _baseline(1, 1)
        breakdown = compute_energy(counters, MODEL)
        expected = MODEL.read_energy(Level.MRF) + MODEL.write_energy(
            Level.MRF
        )
        assert breakdown.total_pj == pytest.approx(expected)

    def test_level_total(self):
        counters = AccessCounters()
        counters.add_read(Level.LRF, count=3)
        breakdown = compute_energy(counters, MODEL)
        assert breakdown.level_total(Level.LRF) == pytest.approx(
            3 * MODEL.read_energy(Level.LRF)
        )


class TestNormalization:
    def test_identity(self):
        baseline = _baseline()
        assert normalized_energy(baseline, baseline, MODEL) == 1.0

    def test_cheaper_hierarchy_below_one(self):
        baseline = _baseline(10, 5)
        hierarchy = AccessCounters()
        hierarchy.add_read(Level.ORF, count=10)
        hierarchy.add_write(Level.ORF, count=5)
        assert normalized_energy(hierarchy, baseline, MODEL) < 1.0

    def test_savings_complements_normalized(self):
        baseline = _baseline()
        hierarchy = AccessCounters()
        hierarchy.add_read(Level.LRF, count=10)
        hierarchy.add_write(Level.LRF, count=5)
        normalized = normalized_energy(hierarchy, baseline, MODEL)
        assert energy_savings(
            hierarchy, baseline, MODEL
        ) == pytest.approx(1 - normalized)

    def test_empty_baseline_rejected(self):
        with pytest.raises(ValueError):
            normalized_energy(AccessCounters(), AccessCounters(), MODEL)

    def test_normalized_by_validates(self):
        breakdown = compute_energy(_baseline(), MODEL)
        with pytest.raises(ValueError):
            breakdown.normalized_by(0.0)


class TestEncodingOverhead:
    def test_paper_optimistic_case(self):
        result = encoding_overhead(1, 0.54)
        assert result.fetch_decode_increase == pytest.approx(0.03, abs=0.01)
        assert result.chip_wide_overhead == pytest.approx(0.003, abs=0.001)
        assert result.chip_wide_net_savings == pytest.approx(0.055, abs=0.01)

    def test_paper_pessimistic_case(self):
        result = encoding_overhead(5, 0.54)
        assert result.fetch_decode_increase == pytest.approx(0.15, abs=0.01)
        assert result.chip_wide_overhead == pytest.approx(0.015, abs=0.002)
        assert result.chip_wide_net_savings >= 0.043

    def test_zero_bits_no_overhead(self):
        result = encoding_overhead(0, 0.5)
        assert result.chip_wide_overhead == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            encoding_overhead(-1, 0.5)
        with pytest.raises(ValueError):
            encoding_overhead(1, 1.5)


class TestChipPower:
    def test_paper_scaling(self):
        result = chip_power_savings(0.54)
        assert result.sm_dynamic_power_savings == pytest.approx(
            0.083, abs=0.003
        )
        assert result.chip_dynamic_power_savings == pytest.approx(
            0.058, abs=0.003
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            chip_power_savings(-0.1)

"""Unit tests for strand partitioning (Section 4.1)."""

from repro.ir import parse_kernel
from repro.strands import EndpointKind, partition_strands


def _instr_strands(kernel, partition):
    """Map block-label -> list of strand ids of its instructions."""
    result = {}
    for ref, _ in kernel.instructions():
        label = kernel.blocks[ref.block_index].label
        result.setdefault(label, []).append(
            partition.strand_of_position[ref.position]
        )
    return result


class TestLongLatencyCuts:
    def test_cut_before_first_consumer(self, straight_kernel):
        partition = partition_strands(straight_kernel)
        # `iadd R7, R6, R3` (position 5) reads the ldg result R3.
        assert partition.cut_before.get(5) is EndpointKind.LONG_LATENCY

    def test_strands_split_at_consumer(self, straight_kernel):
        partition = partition_strands(straight_kernel)
        strand_a = partition.strand_of_position[0]
        strand_b = partition.strand_of_position[5]
        assert strand_a != strand_b
        # The first strand covers everything before the consumer.
        for position in range(5):
            assert partition.strand_of_position[position] == strand_a

    def test_ends_strand_bit_before_cut(self, straight_kernel):
        partition = partition_strands(straight_kernel)
        instructions = list(straight_kernel.instructions())
        assert instructions[4][1].ends_strand
        assert not instructions[1][1].ends_strand

    def test_waw_on_pending_register_cuts(self):
        kernel = parse_kernel(
            """
            .kernel waw
            .livein R0 R1
            entry:
                ldg R2, [R0]
                iadd R2, R0, 1
                stg [R1], R2
                exit
            """
        )
        partition = partition_strands(kernel)
        assert partition.cut_before.get(1) is EndpointKind.LONG_LATENCY


class TestBackwardBranches:
    def test_loop_header_is_backward_target_cut(self, loop_kernel):
        partition = partition_strands(loop_kernel)
        loop = loop_kernel.block_index("loop")
        assert loop in partition.entry_cuts

    def test_backward_branch_ends_strand(self, loop_kernel):
        partition_strands(loop_kernel)
        bra = loop_kernel.blocks[
            loop_kernel.block_index("loop")
        ].instructions[-1]
        assert bra.ends_strand

    def test_loop_body_single_strand_when_no_dependence(self):
        # The load result is consumed in the NEXT iteration only; the
        # body itself never reads a pending register mid-strand: the
        # read of R3 at the top reaches back around the loop.
        kernel = parse_kernel(
            """
            .kernel k
            .livein R0 R1 R2
            entry:
                mov R3, 0
            loop:
                stg [R1], R3
                ldg R3, [R0]
                iadd R2, R2, -1
                setp P0, 0, R2
                @P0 bra loop
            done:
                exit
            """
        )
        partition = partition_strands(kernel)
        body = _instr_strands(kernel, partition)["loop"]
        assert len(set(body)) == 1


class TestUncertainty:
    def test_fig5b_merge_gets_endpoint(self, uncertain_kernel):
        """A load on one hammock arm only: the merge block must begin a
        new strand with wait-for-all semantics (Figure 5b)."""
        partition = partition_strands(uncertain_kernel)
        merge = uncertain_kernel.block_index("merge")
        assert partition.entry_cuts.get(merge) is EndpointKind.UNCERTAINTY
        assert merge in partition.wait_blocks

    def test_consistent_merge_not_cut(self, hammock_kernel):
        """Both arms have the same (empty) pending state after the
        load's consumer; the merge continues the strand."""
        partition = partition_strands(hammock_kernel)
        merge = hammock_kernel.block_index("merge")
        # The hammock merge may continue the strand: setp consumed the
        # load, so both arms carry no pending events and one strand
        # spans the hammock.
        strands = _instr_strands(hammock_kernel, partition)
        assert strands["big"][0] == strands["merge"][0]
        assert strands["small"][0] == strands["merge"][0]


class TestPersistentMode:
    def test_no_long_latency_cuts(self, straight_kernel):
        partition = partition_strands(
            straight_kernel, assume_persistent=True
        )
        assert not any(
            kind is EndpointKind.LONG_LATENCY
            for kind in partition.cut_before.values()
        )
        assert partition.num_strands == 1

    def test_backward_branches_still_cut(self, loop_kernel):
        partition = partition_strands(loop_kernel, assume_persistent=True)
        loop = loop_kernel.block_index("loop")
        assert loop in partition.entry_cuts


class TestStructure:
    def test_every_instruction_in_exactly_one_strand(self, loop_kernel):
        partition = partition_strands(loop_kernel)
        seen = set()
        for strand in partition.strands:
            for ref in strand.refs:
                assert ref.position not in seen
                seen.add(ref.position)
        assert len(seen) == loop_kernel.num_instructions

    def test_strand_positions_consistent(self, uncertain_kernel):
        partition = partition_strands(uncertain_kernel)
        for strand in partition.strands:
            for ref in strand.refs:
                assert (
                    partition.strand_of_position[ref.position]
                    == strand.strand_id
                )

    def test_same_strand_helper(self, straight_kernel):
        partition = partition_strands(straight_kernel)
        refs = [ref for ref, _ in straight_kernel.instructions()]
        assert partition.same_strand(refs[0], refs[1])
        assert not partition.same_strand(refs[0], refs[5])

    def test_exit_ends_strand(self, straight_kernel):
        partition_strands(straight_kernel)
        last = straight_kernel.blocks[-1].instructions[-1]
        assert last.ends_strand


class TestPendingAcrossLoops:
    def test_load_consumed_after_loop_still_cuts(self):
        """A long-latency result consumed only after an intervening
        loop: the pending state must survive the loop's strand
        boundaries so the post-loop consumer still gets a
        LONG_LATENCY endpoint (the warp must wait there)."""
        kernel = parse_kernel(
            """
            .kernel carry
            .livein R0 R1 R2
            entry:
                ldg R3, [R0]
            loop:
                iadd R4, R2, 1
                iadd R2, R2, -1
                setp P0, 0, R2
                @P0 bra loop
            after:
                iadd R5, R3, 1
                stg [R1], R5
                exit
            """
        )
        partition = partition_strands(kernel)
        # Position of `iadd R5, R3, 1` (first instruction of `after`).
        after_first = next(
            ref.position
            for ref, _ in kernel.instructions()
            if ref.block_index == kernel.block_index("after")
        )
        cut = partition.cut_before.get(after_first)
        entry_cut = partition.entry_cuts.get(kernel.block_index("after"))
        waits = (
            cut is EndpointKind.LONG_LATENCY
            or (entry_cut is not None and entry_cut.waits_for_pending)
        )
        assert waits

    def test_pending_consumed_inside_loop_cuts_every_iteration(self):
        """A load issued before the loop and read inside it: the read
        forces an endpoint inside the body (first iteration waits)."""
        kernel = parse_kernel(
            """
            .kernel inloop
            .livein R0 R1 R2
            entry:
                ldg R3, [R0]
            loop:
                iadd R4, R3, R2
                stg [R1], R4
                iadd R2, R2, -1
                setp P0, 0, R2
                @P0 bra loop
            done:
                exit
            """
        )
        partition = partition_strands(kernel)
        loop = kernel.block_index("loop")
        entry_cut = partition.entry_cuts.get(loop)
        body_positions = [
            ref.position
            for ref, _ in kernel.instructions()
            if ref.block_index == loop
        ]
        body_cut = any(
            partition.cut_before.get(p) is EndpointKind.LONG_LATENCY
            for p in body_positions
        )
        # Either the header waits (uncertainty merge of pending states)
        # or the first consumer in the body cuts.
        assert body_cut or (
            entry_cut is not None and entry_cut.waits_for_pending
        )

    def test_store_does_not_end_strand(self):
        kernel = parse_kernel(
            """
            .kernel st
            .livein R0 R1
            entry:
                iadd R2, R0, 1
                stg [R1], R2
                iadd R3, R2, 1
                stg [R1], R3
                exit
            """
        )
        partition = partition_strands(kernel)
        assert partition.num_strands == 1

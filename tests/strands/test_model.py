"""Unit tests for the strand data model and sim parameters."""

import pytest

from repro.ir.instructions import LatencyClass
from repro.sim.params import DEFAULT_PARAMS, SimParams
from repro.strands import EndpointKind, partition_strands
from repro.strands.model import Strand


class TestEndpointKind:
    def test_wait_semantics(self):
        assert EndpointKind.LONG_LATENCY.waits_for_pending
        assert EndpointKind.UNCERTAINTY.waits_for_pending
        assert not EndpointKind.BACKWARD_BRANCH.waits_for_pending
        assert not EndpointKind.BACKWARD_TARGET.waits_for_pending
        assert not EndpointKind.MERGE.waits_for_pending


class TestStrand:
    def test_positions_and_bounds(self, straight_kernel):
        partition = partition_strands(straight_kernel)
        strand = partition.strands[0]
        assert strand.first_position == min(strand.positions)
        assert strand.last_position == max(strand.positions)
        assert len(strand) == len(strand.refs)

    def test_strand_of_lookup(self, straight_kernel):
        partition = partition_strands(straight_kernel)
        for ref, _ in straight_kernel.instructions():
            strand = partition.strand_of(ref)
            assert ref.position in strand.positions

    def test_num_strands(self, loop_kernel):
        partition = partition_strands(loop_kernel)
        assert partition.num_strands == len(partition.strands)


class TestSimParams:
    def test_table2_defaults(self):
        params = DEFAULT_PARAMS
        assert params.alu_latency == 8
        assert params.sfu_latency == 20
        assert params.shared_memory_latency == 20
        assert params.dram_latency == 400
        assert params.texture_latency == 400
        assert params.num_warps == 32
        assert params.register_file_kb == 128

    def test_latency_of_every_class(self):
        params = DEFAULT_PARAMS
        assert params.latency_of(LatencyClass.ALU) == 8
        assert params.latency_of(LatencyClass.SFU) == 20
        assert params.latency_of(LatencyClass.SHARED_MEM) == 20
        assert params.latency_of(LatencyClass.DRAM) == 400
        assert params.latency_of(LatencyClass.TEXTURE) == 400

    def test_shared_unit_occupancy(self):
        # 32 threads over 8 shared units (one per 4-lane cluster).
        assert DEFAULT_PARAMS.shared_unit_issue_cycles == 4

    def test_custom_params(self):
        params = SimParams(alu_latency=1)
        assert params.latency_of(LatencyClass.ALU) == 1

"""CLI tests beyond the basics covered in test_integration."""

import pytest

from repro.cli import main


class TestUnrollCommand:
    def test_unroll_vectoradd(self, capsys):
        assert main(
            ["unroll", "--benchmarks", "vectoradd", "--factor", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "unroll2+hoist" in out
        assert "vectoradd" in out


class TestExportCommand:
    def test_export_writes_csvs(self, tmp_path, capsys):
        # Full-suite export is expensive; patch the workload list down.
        import repro.cli as cli_module
        from repro.workloads import get_workload

        original = cli_module.all_workloads
        cli_module.all_workloads = lambda scale=1.0: [
            get_workload("vectoradd", scale),
            get_workload("histogram", scale),
        ]
        try:
            assert main(
                ["export", str(tmp_path), "--skip-slow"]
            ) == 0
        finally:
            cli_module.all_workloads = original
        assert (tmp_path / "fig13.csv").exists()
        assert (tmp_path / "fig2.csv").exists()
        out = capsys.readouterr().out
        assert "fig13.csv" in out


class TestShowOptions:
    def test_show_two_level(self, capsys):
        assert main(
            ["show", "vectoradd", "--no-lrf", "--orf-entries", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "LRF" not in out.split("strands")[0].split(";")[0] or True
        assert "lrf_values': 0" in out

    def test_show_lrf_default(self, capsys):
        assert main(["show", "hotspot"]) == 0
        out = capsys.readouterr().out
        assert "LRF[" in out


class TestFigureCommands:
    def test_fig2_small_scale(self, capsys):
        import repro.cli as cli_module
        from repro.workloads import get_workload

        original = cli_module.all_workloads
        cli_module.all_workloads = lambda scale=1.0: [
            get_workload("vectoradd", scale)
        ]
        try:
            assert main(["fig2"]) == 0
        finally:
            cli_module.all_workloads = original
        out = capsys.readouterr().out
        assert "Figure 2(a)" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

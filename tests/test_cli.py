"""CLI tests beyond the basics covered in test_integration."""

import pytest

from repro.cli import main


class TestVersion:
    def test_version_flag_prints_and_exits(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        import repro

        assert repro.__version__ in out


class TestAllocateCommand:
    KERNEL = (
        ".kernel tiny\n"
        ".livein R0 R1\n"
        "entry:\n"
        "    iadd R2, R0, R1\n"
        "    stg [R0], R2\n"
        "    exit\n"
    )

    def test_allocate_valid_file(self, tmp_path, capsys):
        path = tmp_path / "tiny.asm"
        path.write_text(self.KERNEL)
        assert main(["allocate", str(path)]) == 0
        out = capsys.readouterr().out
        assert "tiny" in out
        assert "strands" in out

    def test_allocate_parse_error_exits_2(self, tmp_path, capsys):
        path = tmp_path / "bad.asm"
        path.write_text("this is not assembly\n")
        assert main(["allocate", str(path)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro: parse error:")
        assert "Traceback" not in err

    def test_allocate_missing_file_exits_2(self, tmp_path, capsys):
        assert main(["allocate", str(tmp_path / "absent.asm")]) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro: error:")


class TestUnrollCommand:
    def test_unroll_vectoradd(self, capsys):
        assert main(
            ["unroll", "--benchmarks", "vectoradd", "--factor", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "unroll2+hoist" in out
        assert "vectoradd" in out


class TestExportCommand:
    def test_export_writes_csvs(self, tmp_path, capsys):
        # Full-suite export is expensive; patch the workload list down.
        import repro.cli as cli_module
        from repro.workloads import get_workload

        original = cli_module.all_workloads
        cli_module.all_workloads = lambda scale=1.0: [
            get_workload("vectoradd", scale),
            get_workload("histogram", scale),
        ]
        try:
            assert main(
                ["export", str(tmp_path), "--skip-slow"]
            ) == 0
        finally:
            cli_module.all_workloads = original
        assert (tmp_path / "fig13.csv").exists()
        assert (tmp_path / "fig2.csv").exists()
        out = capsys.readouterr().out
        assert "fig13.csv" in out


class TestShowOptions:
    def test_show_two_level(self, capsys):
        assert main(
            ["show", "vectoradd", "--no-lrf", "--orf-entries", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "LRF" not in out.split("strands")[0].split(";")[0] or True
        assert "lrf_values': 0" in out

    def test_show_lrf_default(self, capsys):
        assert main(["show", "hotspot"]) == 0
        out = capsys.readouterr().out
        assert "LRF[" in out


class TestFigureCommands:
    def test_fig2_small_scale(self, capsys):
        import repro.cli as cli_module
        from repro.workloads import get_workload

        original = cli_module.all_workloads
        cli_module.all_workloads = lambda scale=1.0: [
            get_workload("vectoradd", scale)
        ]
        try:
            assert main(["fig2"]) == 0
        finally:
            cli_module.all_workloads = original
        out = capsys.readouterr().out
        assert "Figure 2(a)" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

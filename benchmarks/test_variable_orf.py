"""Benchmark: variable ORF allocation — fixed vs realistic scheduler
vs oracle (Section 7)."""

from conftest import write_result

from repro.experiments import format_variable_orf, run_variable_orf_study


def test_variable_orf(benchmark, suite_data, results_dir):
    result = benchmark.pedantic(
        run_variable_orf_study, args=(suite_data,), rounds=1, iterations=1
    )
    write_result(results_dir, "variable_orf", format_variable_orf(result))

    # Paper: the oracle buys ~6 further points over fixed sizing.
    gain = result.fixed - result.oracle
    assert 0.01 <= gain <= 0.15
    # The realistic scheduler lands between fixed and the oracle.
    assert result.oracle <= result.realistic <= result.fixed + 1e-9

"""Benchmark: unroll-and-hoist ablation (Section 6.4 prescription).

Applies the paper's suggested fix for its two worst benchmarks —
fused loop unrolling plus hoisting all long-latency loads to the top
of the body — using the real compiler transforms, and checks that the
savings move decisively toward the suite average.
"""

from conftest import write_result

from repro.experiments import format_unroll_study, run_unroll_study


def test_unroll_ablation(benchmark, results_dir):
    result = benchmark.pedantic(
        run_unroll_study, rounds=1, iterations=1
    )
    write_result(results_dir, "unroll_ablation", format_unroll_study(result))

    table = result.by_benchmark()
    for name in ("reduction", "scalarprod"):
        original = 1 - table[name]["original"]
        optimised = 1 - table[name]["unroll4+hoist"]
        # The prescription must at least double the savings of the
        # paper's worst benchmarks.
        assert optimised > 2 * original
        # And land near the suite's typical savings (~40-55%).
        assert optimised > 0.35

"""Micro-benchmarks of the core machinery (not figure reproductions):
allocator throughput, trace execution, and hardware-cache accounting.

These track the library's own performance so regressions in the
compiler or simulator hot paths are visible.
"""

import pytest

from repro.alloc import AllocationConfig, allocate_kernel
from repro.sim import Scheme, SchemeKind, build_traces, evaluate_traces
from repro.workloads import get_workload

_SPEC = get_workload("dct8x8")


@pytest.fixture(scope="module")
def traces():
    return build_traces(_SPEC.kernel, _SPEC.warp_inputs)


def test_allocator_throughput(benchmark):
    config = AllocationConfig.best_paper_config()
    benchmark(allocate_kernel, _SPEC.kernel, config)


def test_trace_execution_throughput(benchmark):
    benchmark(build_traces, _SPEC.kernel, _SPEC.warp_inputs)


def test_software_accounting_throughput(benchmark, traces):
    scheme = Scheme(SchemeKind.SW_THREE_LEVEL, 3, split_lrf=True)
    benchmark(evaluate_traces, traces, scheme)


def test_hardware_accounting_throughput(benchmark, traces):
    scheme = Scheme(SchemeKind.HW_TWO_LEVEL, 3)
    benchmark(evaluate_traces, traces, scheme)

"""Benchmark: regenerate Figure 14 (energy breakdown of the best
configuration)."""

from conftest import write_result

from repro.experiments import format_fig14, run_fig14
from repro.levels import Level


def test_fig14_breakdown(benchmark, suite_data, results_dir):
    result = benchmark.pedantic(
        run_fig14, args=(suite_data,), rounds=1, iterations=1
    )
    write_result(results_dir, "fig14_breakdown", format_fig14(result))

    point = result.point(3)
    mrf_share = (
        point.access[Level.MRF] + point.wire[Level.MRF]
    ) / point.total
    # Paper: roughly two thirds of the remaining energy is MRF, split
    # about evenly between access and wire.
    assert 0.5 <= mrf_share <= 0.85
    ratio = point.access[Level.MRF] / point.wire[Level.MRF]
    assert 0.7 <= ratio <= 1.5
    # Paper: LRF wire energy is ~1% of baseline or less.
    assert point.wire[Level.LRF] < 0.03

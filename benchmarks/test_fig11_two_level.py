"""Benchmark: regenerate Figure 11 (two-level read/write breakdown)."""

from conftest import write_result

from repro.experiments import format_fig11, run_fig11
from repro.levels import Level


def test_fig11_two_level(benchmark, suite_data, results_dir):
    result = benchmark.pedantic(
        run_fig11, args=(suite_data,), rounds=1, iterations=1
    )
    write_result(results_dir, "fig11_two_level", format_fig11(result))

    hw3 = result.point("hw", 3)
    sw3 = result.point("sw", 3)
    # SW never over-reads; HW pays write-back reads (paper: ~20% extra).
    assert abs(sw3.total_reads - 1.0) < 1e-9
    assert hw3.total_reads > 1.05
    # SW writes the ORF less than the RFC (paper: ~20% less).
    assert sw3.writes[Level.ORF] < hw3.writes[Level.ORF]
    # SW MRF reads no worse than HW at the operating point.
    assert sw3.reads[Level.MRF] <= hw3.reads[Level.MRF]

"""Benchmark: regenerate the Section 6.5 encoding-overhead analysis."""

from conftest import write_result

from repro.experiments import format_encoding_study, run_encoding_study


def test_encoding_overhead(benchmark, suite_data, results_dir):
    result = benchmark.pedantic(
        run_encoding_study, args=(suite_data,), rounds=1, iterations=1
    )
    write_result(
        results_dir, "encoding_overhead", format_encoding_study(result)
    )

    # Paper: net chip-wide savings of ~5.5% (optimistic encoding) and
    # at least 4.3% (pessimistic).
    assert result.optimistic.chip_wide_net_savings >= 0.045
    assert result.pessimistic.chip_wide_net_savings >= 0.035
    assert (
        result.optimistic.chip_wide_overhead
        < result.pessimistic.chip_wide_overhead
    )

"""Benchmark: energy-model sensitivity (robustness of conclusions)."""

from conftest import write_result

from repro.experiments import format_sensitivity, run_sensitivity_study


def test_sensitivity(benchmark, suite_data, results_dir):
    result = benchmark.pedantic(
        run_sensitivity_study, args=(suite_data,), rounds=1, iterations=1
    )
    write_result(results_dir, "sensitivity", format_sensitivity(result))

    # Software control must beat hardware caching at every scaling of
    # the synthesis constants in [0.5x, 2x].
    assert result.all_orderings_hold()

"""Benchmark: the two-level warp scheduler study (Sections 2.2, 6).

Paper claim: with 8 active warps out of 32 resident, the SM suffers no
performance penalty from two-level scheduling.
"""

from conftest import bench_scale, write_result

from repro.experiments import (
    format_scheduler_study,
    run_scheduler_study,
)
from repro.workloads import get_workload

_BENCHMARKS = [
    "matrixmul",
    "reduction",
    "hotspot",
    "mandelbrot",
    "montecarlo",
    "vectoradd",
]


def test_scheduler_performance(benchmark, results_dir):
    specs = [get_workload(name, bench_scale()) for name in _BENCHMARKS]
    result = benchmark.pedantic(
        run_scheduler_study,
        args=(specs,),
        kwargs={"num_warps": 32},
        rounds=1,
        iterations=1,
    )
    write_result(
        results_dir, "scheduler_performance",
        format_scheduler_study(result),
    )

    relative = result.mean_relative_ipc()
    # Paper: 8 active warps reach all-active performance.
    assert relative[8] >= 0.90
    # And a tiny active set clearly does not.
    assert relative[1] < relative[8]

"""Benchmark: regenerate Figure 2 (register value usage patterns)."""

from conftest import write_result

from repro.experiments import format_fig2, run_fig2


def test_fig2_usage(benchmark, suite_data, results_dir):
    result = benchmark.pedantic(
        run_fig2, args=(suite_data,), rounds=1, iterations=1
    )
    text = format_fig2(result)
    write_result(results_dir, "fig2_usage", text)

    # Paper shape: up to ~70% of values read at most once; ~50% of all
    # values read once within three instructions.
    assert 0.55 <= result.overall.fraction_read_at_most_once() <= 0.80
    assert 0.40 <= result.overall.fraction_read_once_within(3) <= 0.65

"""Benchmark: regenerate Figure 13 (normalized energy of every
organisation) — the paper's headline result."""

from conftest import write_result

from repro.experiments import format_fig13, run_fig13


def test_fig13_energy(benchmark, suite_data, results_dir):
    result = benchmark.pedantic(
        run_fig13, args=(suite_data,), rounds=1, iterations=1
    )
    write_result(results_dir, "fig13_energy", format_fig13(result))

    # The paper's ordering at the operating points must hold:
    # HW (34%) < HW LRF (41%) < SW (45%) < SW LRF Split (54%).
    hw = 1 - result.curves["HW"][3]
    hw_lrf = 1 - result.curves["HW LRF"][6]
    sw = 1 - result.curves["SW"][3]
    sw_split = 1 - result.curves["SW LRF Split"][3]
    assert hw < sw < sw_split
    assert hw < hw_lrf < sw_split

    # Magnitudes within a reproduction band of the paper's numbers.
    assert 0.25 <= hw <= 0.45          # paper 0.34
    assert 0.35 <= sw <= 0.55          # paper 0.45
    assert 0.45 <= sw_split <= 0.62    # paper 0.54

    # SW curves peak at small ORF sizes (paper: 3 entries).
    best_entries, _ = result.best("SW LRF Split")
    assert best_entries <= 5

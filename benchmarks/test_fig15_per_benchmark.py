"""Benchmark: regenerate Figure 15 (per-benchmark energy, best
configuration)."""

from conftest import write_result

from repro.experiments import format_fig15, run_fig15


def test_fig15_per_benchmark(benchmark, suite_data, results_dir):
    result = benchmark.pedantic(
        run_fig15, args=(suite_data,), rounds=1, iterations=1
    )
    write_result(
        results_dir, "fig15_per_benchmark", format_fig15(result)
    )

    # Paper: Reduction and ScalarProd save the least, because their
    # tight global-load loops pass few values in registers.
    worst_two = {name for name, _ in result.worst(2)}
    assert worst_two == {"reduction", "scalarprod"}
    # Every benchmark still saves energy.
    assert all(energy < 1.0 for energy in result.energies.values())
    # All 36 Table 1 benchmarks are present.
    assert len(result.energies) == 36

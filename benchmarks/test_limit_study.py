"""Benchmark: regenerate the Section 7 limit study."""

from conftest import write_result

from repro.experiments import format_limit_study, run_limit_study


def test_limit_study(benchmark, suite_data, results_dir):
    result = benchmark.pedantic(
        run_limit_study, args=(suite_data,), rounds=1, iterations=1
    )
    write_result(results_dir, "limit_study", format_limit_study(result))

    # Ideal bounds (paper: 87% all-LRF, 61% all-ORF(5)).
    assert 1 - result.ideal_all_lrf >= 0.80
    assert 0.55 <= 1 - result.ideal_all_orf5 <= 0.75
    # Idealisations only ever help.
    assert result.variable_orf <= result.realistic + 1e-9
    assert result.fewer_active_warps <= result.realistic + 1e-9
    assert result.resched_ideal_8_as_3 <= result.realistic + 1e-9
    assert result.hw_resident_backward <= result.hw_flush_backward
    # The realistic design already sits well inside the ideal bounds
    # (paper: "competitive with an idealized system").
    assert result.realistic < 2.0 * result.ideal_all_orf5

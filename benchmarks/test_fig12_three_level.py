"""Benchmark: regenerate Figure 12 (three-level read/write breakdown)."""

from conftest import write_result

from repro.experiments import format_fig12, run_fig12
from repro.levels import Level


def test_fig12_three_level(benchmark, suite_data, results_dir):
    result = benchmark.pedantic(
        run_fig12, args=(suite_data,), rounds=1, iterations=1
    )
    write_result(results_dir, "fig12_three_level", format_fig12(result))

    sw3 = result.point("sw", 3)
    split3 = result.point("sw_split", 3)
    hw3 = result.point("hw", 3)
    # The one-entry LRF captures a large share of reads (paper: ~30%).
    assert sw3.reads[Level.LRF] > 0.15
    # Split LRF captures at least as many (paper: ~+20%).
    assert split3.reads[Level.LRF] >= sw3.reads[Level.LRF]
    # Overhead writes: HW well above SW (paper: ~40% vs <10%).
    assert hw3.total_writes - 1.0 > 2 * max(0.0, sw3.total_writes - 1.0)

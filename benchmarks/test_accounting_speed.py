"""Scalar vs. compiled accounting speed (the `bench-accounting` pair).

Tracks the compiled trace layer's advantage on a single workload and
on the full-suite software sweep, and regenerates the canonical
``BENCH_accounting.json`` at the repository root.
"""

import pathlib

import pytest

from repro.bench import write_report
from repro.experiments import (
    format_bench_accounting,
    run_bench_accounting,
)
from repro.sim import Scheme, SchemeKind, build_traces, evaluate_traces
from repro.workloads import get_workload

from conftest import bench_scale, write_result

_SPEC = get_workload("dct8x8")
_SW = Scheme(SchemeKind.SW_THREE_LEVEL, 3, split_lrf=True)
_HW = Scheme(SchemeKind.HW_TWO_LEVEL, 3)


@pytest.fixture(scope="module")
def traces():
    return build_traces(_SPEC.kernel, _SPEC.warp_inputs)


def test_software_accounting_scalar(benchmark, traces):
    benchmark(evaluate_traces, traces, _SW, use_compiled=False)


def test_software_accounting_compiled(benchmark, traces):
    benchmark(evaluate_traces, traces, _SW, use_compiled=True)


def test_hardware_accounting_scalar(benchmark, traces):
    benchmark(evaluate_traces, traces, _HW, use_compiled=False)


def test_hardware_accounting_compiled(benchmark, traces):
    benchmark(evaluate_traces, traces, _HW, use_compiled=True)


def test_bench_accounting_suite(results_dir):
    """Full-suite measurement; writes BENCH_accounting.json.

    The acceptance bar for the compiled layer: software-scheme
    accounting at least 3x faster than the scalar oracle on the
    standard suite (cold caches, single process).  The JSON report is
    written once, to the canonical root path (the formatted text still
    lands under ``benchmarks/results/``).
    """
    payload = run_bench_accounting(scale=bench_scale(), repeats=3)
    write_result(
        results_dir, "bench_accounting", format_bench_accounting(payload)
    )
    root = pathlib.Path(__file__).resolve().parent.parent
    write_report(root / "BENCH_accounting.json", payload)
    assert payload["software"]["speedup"] >= 3.0
    # Schema 3: batched allocation must beat per-config allocation
    # across the 18-config software sweep (2x floor at reduced scale;
    # the pinned full-scale run records >= 3x).
    allocation = payload["allocation"]
    assert allocation["configs"] == 18
    assert allocation["speedup"] >= 2.0
    assert allocation["analysis_s"] > 0
    assert allocation["levels_s"] > 0

"""Shared fixtures for the benchmark harness.

``pytest benchmarks/ --benchmark-only`` regenerates every figure and
table of the paper, timing each experiment once (the experiments are
deterministic, so single-round pedantic benchmarking is appropriate)
and writing the formatted output to ``benchmarks/results/``.

Environment knobs:

* ``REPRO_BENCH_SCALE`` — multiply workload trip counts (default 1.0).
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.experiments import SuiteData
from repro.workloads import all_workloads

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


@pytest.fixture(scope="session")
def suite_data() -> SuiteData:
    scale = bench_scale()
    return SuiteData.build(all_workloads(scale), scale=scale)


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def write_result(results_dir: pathlib.Path, name: str, text: str) -> None:
    path = results_dir / f"{name}.txt"
    path.write_text(text + "\n")

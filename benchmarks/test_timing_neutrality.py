"""Benchmark: performance neutrality under operand-delivery timing.

The paper's headline qualifier — energy saved "without harming system
performance" — checked with the operand-collector timing model: the
software hierarchy's IPC must match (or exceed, by shedding MRF bank
conflicts) the single-level baseline's.
"""

from conftest import bench_scale, write_result

from repro.experiments import format_timing_study, run_timing_study
from repro.workloads import get_workload

_BENCHMARKS = [
    "matrixmul", "hotspot", "reduction", "montecarlo",
    "vectoradd", "histogram",
]


def test_timing_neutrality(benchmark, results_dir):
    specs = [get_workload(name, bench_scale()) for name in _BENCHMARKS]
    result = benchmark.pedantic(
        run_timing_study,
        args=(specs,),
        kwargs={"num_warps": 32},
        rounds=1,
        iterations=1,
    )
    write_result(
        results_dir, "timing_neutrality", format_timing_study(result)
    )

    assert result.geomean_ratio() >= 0.99
    for point in result.points:
        assert point.ipc_ratio >= 0.95
        assert (
            point.hierarchy.bank_conflicts
            <= point.baseline.bank_conflicts
        )

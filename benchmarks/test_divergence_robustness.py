"""Benchmark: divergence robustness of the energy results."""

from conftest import write_result

from repro.experiments import (
    format_divergence_study,
    run_divergence_study,
)


def test_divergence_robustness(benchmark, results_dir):
    result = benchmark.pedantic(
        run_divergence_study, rounds=1, iterations=1
    )
    write_result(
        results_dir, "divergence_robustness",
        format_divergence_study(result),
    )

    # Normalized energy is insensitive to divergence (every divergent
    # trace is also verified per lane inside the study).
    assert result.max_abs_delta() < 0.05
